// Text format for mixed-parallel applications.
//
// A human-writable description so real workflows (not just daggen samples)
// can be scheduled with the CLI driver and the library. Grammar, one
// directive per line, '#' starts a comment:
//
//     task <name> <seq_time_seconds> <alpha>
//     edge <from-name> <to-name>
//
// Task names are arbitrary non-whitespace tokens; edges may reference
// tasks declared later. Example:
//
//     # three-stage pipeline
//     task prep    1800  0.4
//     task solve  36000  0.05
//     task render  3600  0.2
//     edge prep solve
//     edge solve render
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/schedule.hpp"
#include "src/dag/dag.hpp"

namespace resched::io {

struct NamedDag {
  dag::Dag dag;
  std::vector<std::string> names;  ///< names[task id] == declared name

  /// Task id for a name; throws resched::Error when unknown.
  int id_of(const std::string& name) const;
};

/// Parses the text format. Throws resched::Error with a line number on
/// syntax errors, duplicate tasks, unknown edge endpoints, or cycles.
NamedDag read_dag(std::istream& in, const std::string& source = "<stream>");
NamedDag read_dag_file(const std::string& path);

/// Writes a DAG in the same format (names default to t0, t1, ...).
void write_dag(std::ostream& out, const dag::Dag& dag,
               const std::vector<std::string>& names = {});

/// Writes an application schedule as CSV:
/// task,name,procs,start,finish,duration — one row per task.
void write_schedule_csv(std::ostream& out, const core::AppSchedule& schedule,
                        const std::vector<std::string>& names = {});

}  // namespace resched::io
