#include "src/io/dag_format.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "src/util/error.hpp"

namespace resched::io {

namespace {

[[noreturn]] void syntax_error(const std::string& source, int line,
                               const std::string& what) {
  std::ostringstream os;
  os << source << ":" << line << ": " << what;
  throw Error(os.str());
}

}  // namespace

int NamedDag::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<int>(i);
  throw Error("unknown task name: " + name);
}

NamedDag read_dag(std::istream& in, const std::string& source) {
  std::vector<dag::TaskCost> costs;
  std::vector<std::string> names;
  std::map<std::string, int> ids;
  // Edges may reference forward declarations; resolve after the scan.
  std::vector<std::pair<std::string, std::string>> edge_names;
  std::vector<int> edge_lines;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank or comment-only

    if (directive == "task") {
      std::string name;
      double seq_time = 0.0, alpha = 0.0;
      if (!(fields >> name >> seq_time >> alpha))
        syntax_error(source, lineno, "expected: task <name> <seconds> <alpha>");
      if (ids.count(name))
        syntax_error(source, lineno, "duplicate task '" + name + "'");
      if (seq_time <= 0.0)
        syntax_error(source, lineno, "task time must be positive");
      if (alpha < 0.0 || alpha > 1.0)
        syntax_error(source, lineno, "alpha must be in [0, 1]");
      ids[name] = static_cast<int>(costs.size());
      names.push_back(name);
      costs.push_back({seq_time, alpha});
    } else if (directive == "edge") {
      std::string from, to;
      if (!(fields >> from >> to))
        syntax_error(source, lineno, "expected: edge <from> <to>");
      edge_names.emplace_back(from, to);
      edge_lines.push_back(lineno);
    } else {
      syntax_error(source, lineno, "unknown directive '" + directive + "'");
    }
  }
  if (costs.empty()) syntax_error(source, lineno, "no tasks declared");

  std::vector<std::pair<int, int>> edges;
  for (std::size_t e = 0; e < edge_names.size(); ++e) {
    auto from = ids.find(edge_names[e].first);
    auto to = ids.find(edge_names[e].second);
    if (from == ids.end())
      syntax_error(source, edge_lines[e],
                   "unknown task '" + edge_names[e].first + "'");
    if (to == ids.end())
      syntax_error(source, edge_lines[e],
                   "unknown task '" + edge_names[e].second + "'");
    edges.emplace_back(from->second, to->second);
  }
  // Dag's constructor reports cycles / duplicate edges with its own message.
  return NamedDag{dag::Dag(std::move(costs), edges), std::move(names)};
}

NamedDag read_dag_file(const std::string& path) {
  std::ifstream in(path);
  RESCHED_CHECK(in.good(), "cannot open DAG file: " + path);
  return read_dag(in, path);
}

void write_dag(std::ostream& out, const dag::Dag& dag,
               const std::vector<std::string>& names) {
  auto name_of = [&](int v) {
    return v < static_cast<int>(names.size())
               ? names[static_cast<std::size_t>(v)]
               : "t" + std::to_string(v);
  };
  out.precision(17);
  out << "# resched DAG: " << dag.size() << " tasks, " << dag.num_edges()
      << " edges\n";
  for (int v = 0; v < dag.size(); ++v)
    out << "task " << name_of(v) << ' ' << dag.cost(v).seq_time << ' '
        << dag.cost(v).alpha << "\n";
  for (int v = 0; v < dag.size(); ++v)
    for (int s : dag.successors(v))
      out << "edge " << name_of(v) << ' ' << name_of(s) << "\n";
}

void write_schedule_csv(std::ostream& out, const core::AppSchedule& schedule,
                        const std::vector<std::string>& names) {
  out.precision(17);
  out << "task,name,procs,start,finish,duration\n";
  for (std::size_t v = 0; v < schedule.tasks.size(); ++v) {
    const core::TaskReservation& r = schedule.tasks[v];
    std::string name =
        v < names.size() ? names[v] : "t" + std::to_string(v);
    out << v << ',' << name << ',' << r.procs << ',' << r.start << ','
        << r.finish << ',' << (r.finish - r.start) << "\n";
  }
}

}  // namespace resched::io
