#include "src/io/calendar_format.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "src/util/error.hpp"

namespace resched::io {

namespace {
[[noreturn]] void calendar_error(const std::string& source, int line,
                                 const std::string& what) {
  std::ostringstream os;
  os << source << ":" << line << ": " << what;
  throw Error(os.str());
}
}  // namespace

resv::AvailabilityProfile read_calendar(std::istream& in,
                                        const std::string& source) {
  std::optional<resv::AvailabilityProfile> profile;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;

    if (directive == "capacity") {
      int procs = 0;
      if (!(fields >> procs) || procs < 1)
        calendar_error(source, lineno, "expected: capacity <processors>");
      if (profile)
        calendar_error(source, lineno, "duplicate capacity directive");
      profile.emplace(procs);
    } else if (directive == "resv") {
      if (!profile)
        calendar_error(source, lineno, "capacity must precede reservations");
      double start = 0.0, end = 0.0;
      int procs = 0;
      if (!(fields >> start >> end >> procs) || end <= start || procs < 1)
        calendar_error(source, lineno,
                       "expected: resv <start> <end> <procs> with start < "
                       "end and procs >= 1");
      profile->add({start, end, procs});
    } else {
      calendar_error(source, lineno,
                     "unknown directive '" + directive + "'");
    }
  }
  if (!profile) calendar_error(source, lineno, "missing capacity directive");
  return *profile;
}

resv::AvailabilityProfile read_calendar_file(const std::string& path) {
  std::ifstream in(path);
  RESCHED_CHECK(in.good(), "cannot open calendar file: " + path);
  return read_calendar(in, path);
}

void write_calendar(std::ostream& out, int capacity,
                    const resv::ReservationList& reservations) {
  out.precision(17);
  out << "capacity " << capacity << "\n";
  for (const auto& r : reservations)
    out << "resv " << r.start << ' ' << r.end << ' ' << r.procs << "\n";
}

}  // namespace resched::io
