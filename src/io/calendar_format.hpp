// Text format for reservation calendars.
//
// Lets the CLI (and users) describe a platform's existing advance
// reservations directly instead of deriving them from an SWF log. Grammar,
// one directive per line, '#' starts a comment:
//
//     capacity <processors>          # exactly once, before any resv
//     resv <start> <end> <procs>     # seconds; start < end
//
// Example:
//
//     capacity 128
//     resv     3600  7200  64   # maintenance window
//     resv    10800 18000  32
#pragma once

#include <iosfwd>
#include <string>

#include "src/resv/profile.hpp"

namespace resched::io {

/// Parses a calendar file. Throws resched::Error with line numbers on
/// malformed input.
resv::AvailabilityProfile read_calendar(std::istream& in,
                                        const std::string& source =
                                            "<stream>");
resv::AvailabilityProfile read_calendar_file(const std::string& path);

/// Writes a capacity line plus one resv line per reservation.
void write_calendar(std::ostream& out, int capacity,
                    const resv::ReservationList& reservations);

}  // namespace resched::io
