#include "src/multi/deadline_multi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "src/util/error.hpp"

namespace resched::multi {

namespace {

struct TripleChoice {
  int cluster = -1;
  int np = 0;
  double start = 0.0;
  double exec = 0.0;
  double work = 0.0;  ///< np * exec * speed
};

/// Latest-start triple across clusters, np bounded per cluster.
std::optional<TripleChoice> latest_triple(
    const MultiPlatform& platform,
    const std::vector<resv::AvailabilityProfile>& calendars,
    const dag::TaskCost& cost, const std::vector<int>& bound, double dl,
    double now) {
  std::optional<TripleChoice> best;
  for (int c = 0; c < platform.num_clusters(); ++c) {
    const Cluster& cluster = platform.cluster(c);
    for (int np = bound[static_cast<std::size_t>(c)]; np >= 1; --np) {
      double exec = cluster.exec_time(cost, np);
      if (best && dl - exec < best->start) break;  // dominated downward
      auto start = calendars[static_cast<std::size_t>(c)].latest_fit(
          np, exec, dl, now);
      if (!start) continue;
      double work = static_cast<double>(np) * exec * cluster.speed;
      if (!best || *start > best->start ||
          (*start == best->start && work < best->work))
        best = TripleChoice{c, np, *start, exec, work};
    }
  }
  return best;
}

/// Least-work triple whose latest feasible start clears `threshold`.
std::optional<TripleChoice> conservative_triple(
    const MultiPlatform& platform,
    const std::vector<resv::AvailabilityProfile>& calendars,
    const dag::TaskCost& cost, double dl, double now, double threshold) {
  if (threshold >= dl) return std::nullopt;
  std::optional<TripleChoice> best;
  for (int c = 0; c < platform.num_clusters(); ++c) {
    const Cluster& cluster = platform.cluster(c);
    for (int np = 1; np <= cluster.procs(); ++np) {
      double exec = cluster.exec_time(cost, np);
      if (dl - exec < threshold) continue;  // cannot clear even when free
      double work = static_cast<double>(np) * exec * cluster.speed;
      if (best && work >= best->work) break;  // work grows with np
      auto start = calendars[static_cast<std::size_t>(c)].latest_fit(
          np, exec, dl, now);
      if (start && *start >= threshold) {
        best = TripleChoice{c, np, *start, exec, work};
        break;  // smallest qualifying np on this cluster found
      }
    }
  }
  return best;
}

std::optional<MultiDeadlineResult> backward_pass(
    const dag::Dag& dag, const MultiPlatform& platform, double now,
    double deadline, const std::vector<int>& order,
    const std::vector<std::vector<int>>& bound,
    const std::vector<double>* guideline_rel, double cpa_makespan,
    double lambda) {
  const double stretch =
      cpa_makespan > 0.0 ? std::max(1.0, (deadline - now) / cpa_makespan)
                         : 1.0;
  std::vector<resv::AvailabilityProfile> calendars;
  for (int c = 0; c < platform.num_clusters(); ++c)
    calendars.push_back(platform.cluster(c).calendar);

  MultiDeadlineResult result;
  result.schedule.tasks.resize(static_cast<std::size_t>(dag.size()));
  result.cluster_of.assign(static_cast<std::size_t>(dag.size()), -1);

  for (int task : order) {
    auto ti = static_cast<std::size_t>(task);
    double dl = deadline;
    for (int succ : dag.successors(task))
      dl = std::min(dl,
                    result.schedule.tasks[static_cast<std::size_t>(succ)].start);

    std::optional<TripleChoice> choice;
    if (guideline_rel != nullptr) {
      double s_i = now + stretch * (*guideline_rel)[ti];
      double threshold = s_i + lambda * (dl - s_i);
      choice = conservative_triple(platform, calendars, dag.cost(task), dl,
                                   now, threshold);
    }
    if (!choice)
      choice = latest_triple(platform, calendars, dag.cost(task),
                             bound[ti], dl, now);
    if (!choice) return std::nullopt;

    double finish = std::min(choice->start + choice->exec, dl);
    core::TaskReservation r{choice->np, choice->start, finish};
    result.schedule.tasks[ti] = r;
    result.cluster_of[ti] = choice->cluster;
    calendars[static_cast<std::size_t>(choice->cluster)].add(
        r.as_reservation());
    result.cpu_hours += choice->work / 3600.0;
  }
  result.feasible = true;
  return result;
}

}  // namespace

const char* to_string(MultiDlAlgo algo) {
  switch (algo) {
    case MultiDlAlgo::kAggressive: return "MDL_BD_CPA";
    case MultiDlAlgo::kConservativeLambda: return "MDL_RC_CPAR-lambda";
  }
  return "?";
}

MultiDeadlineResult schedule_deadline_multi(const dag::Dag& dag,
                                            const MultiPlatform& platform,
                                            double now, double deadline,
                                            const MultiDeadlineParams& params) {
  auto q_hist = platform.historical_availability(now, params.history_window);
  int q_ref = *std::max_element(q_hist.begin(), q_hist.end());
  double speed_ref = 0.0;
  for (int c = 0; c < platform.num_clusters(); ++c)
    speed_ref = std::max(speed_ref, platform.cluster(c).speed);

  // Reference CPA allocations drive bottom levels, per-cluster bounds, and
  // the guideline schedule (cf. DeadlineContext in the single-cluster
  // implementation).
  auto alloc = cpa::allocations(dag, q_ref, params.cpa);
  auto bl = dag::bottom_levels(dag, alloc);
  auto order = dag::order_by_decreasing(dag, bl);
  std::reverse(order.begin(), order.end());

  std::vector<std::vector<int>> bound(static_cast<std::size_t>(dag.size()));
  for (int v = 0; v < dag.size(); ++v) {
    auto& row = bound[static_cast<std::size_t>(v)];
    for (int c = 0; c < platform.num_clusters(); ++c)
      row.push_back(std::min(alloc[static_cast<std::size_t>(v)],
                             platform.cluster(c).procs()));
  }

  if (params.algo == MultiDlAlgo::kAggressive) {
    auto pass = backward_pass(dag, platform, now, deadline, order, bound,
                              nullptr, 0.0, 0.0);
    return pass ? std::move(*pass) : MultiDeadlineResult{};
  }

  // Guideline schedule on the reference cluster, time-scaled by its speed.
  std::vector<double> guideline(static_cast<std::size_t>(dag.size()), 0.0);
  double guideline_makespan = 0.0;
  {
    std::vector<bool> keep(static_cast<std::size_t>(dag.size()), true);
    for (std::size_t k = 0; k < order.size(); ++k) {
      int task = order[k];
      auto guide = cpa::subdag_guideline(dag, keep, q_ref, params.cpa);
      if (k == 0) guideline_makespan = guide.makespan / speed_ref;
      guideline[static_cast<std::size_t>(task)] =
          guide.start[static_cast<std::size_t>(task)] / speed_ref;
      keep[static_cast<std::size_t>(task)] = false;
    }
  }

  RESCHED_CHECK(params.lambda_step > 0.0, "lambda_step must be positive");
  for (double lambda = 0.0; lambda <= 1.0 + 1e-12;
       lambda += params.lambda_step) {
    auto pass = backward_pass(dag, platform, now, deadline, order, bound,
                              &guideline, guideline_makespan,
                              std::min(lambda, 1.0));
    if (pass) {
      pass->lambda_used = std::min(lambda, 1.0);
      return std::move(*pass);
    }
  }
  return MultiDeadlineResult{};
}

}  // namespace resched::multi
