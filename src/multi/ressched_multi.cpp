#include "src/multi/ressched_multi.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/error.hpp"

namespace resched::multi {

int MultiPlatform::total_procs() const {
  int total = 0;
  for (const Cluster& c : clusters_) total += c.procs();
  return total;
}

int MultiPlatform::max_cluster_procs() const {
  int best = 0;
  for (const Cluster& c : clusters_) best = std::max(best, c.procs());
  return best;
}

std::vector<int> MultiPlatform::historical_availability(double now,
                                                        double window) const {
  std::vector<int> out;
  out.reserve(clusters_.size());
  for (const Cluster& c : clusters_)
    out.push_back(resv::historical_average_available(c.calendar, now, window));
  return out;
}

MultiResult schedule_ressched_multi(const dag::Dag& dag,
                                    const MultiPlatform& platform, double now,
                                    const MultiParams& params) {
  const int num_clusters = platform.num_clusters();
  auto q_hist = platform.historical_availability(now, params.history_window);

  // Reference cluster for the BL_CPAR generalization: the largest
  // historical availability at the fastest speed.
  int q_ref = *std::max_element(q_hist.begin(), q_hist.end());
  double speed_ref = 0.0;
  for (int c = 0; c < num_clusters; ++c)
    speed_ref = std::max(speed_ref, platform.cluster(c).speed);

  auto alloc = cpa::allocations(dag, q_ref, params.cpa);
  auto bl = dag::bottom_levels(dag, alloc);
  for (double& v : bl) v /= speed_ref;  // uniform speed scaling; order-safe
  auto order = dag::order_by_decreasing(dag, bl);

  // Per-cluster working calendars (task reservations commit as we go).
  std::vector<resv::AvailabilityProfile> calendars;
  calendars.reserve(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c)
    calendars.push_back(platform.cluster(c).calendar);

  MultiResult result;
  result.schedule.tasks.resize(static_cast<std::size_t>(dag.size()));
  result.cluster_of.assign(static_cast<std::size_t>(dag.size()), -1);

  for (int task : order) {
    auto ti = static_cast<std::size_t>(task);
    double ready = now;
    for (int pred : dag.predecessors(task))
      ready = std::max(
          ready, result.schedule.tasks[static_cast<std::size_t>(pred)].finish);

    int best_cluster = -1, best_np = 0;
    double best_start = 0.0, best_completion = 0.0, best_work = 0.0;
    for (int c = 0; c < num_clusters; ++c) {
      const Cluster& cluster = platform.cluster(c);
      int bound = std::min(alloc[ti], cluster.procs());
      for (int np = bound; np >= 1; --np) {
        double exec = cluster.exec_time(dag.cost(task), np);
        // Same dominated-count pruning as the single-cluster algorithm.
        if (best_cluster >= 0 && ready + exec > best_completion) break;
        auto start = calendars[static_cast<std::size_t>(c)].earliest_fit(
            np, exec, ready);
        if (!start) continue;
        double completion = *start + exec;
        double work = static_cast<double>(np) * exec * cluster.speed;
        if (best_cluster < 0 || completion < best_completion ||
            (completion == best_completion && work < best_work)) {
          best_cluster = c;
          best_np = np;
          best_start = *start;
          best_completion = completion;
          best_work = work;
        }
      }
    }
    RESCHED_ASSERT(best_cluster >= 0, "some cluster must fit every task");

    core::TaskReservation r{best_np, best_start, best_completion};
    result.schedule.tasks[ti] = r;
    result.cluster_of[ti] = best_cluster;
    calendars[static_cast<std::size_t>(best_cluster)].add(r.as_reservation());
    result.cpu_hours += best_work / 3600.0;
  }

  result.turnaround = result.schedule.turnaround(now);
  return result;
}

std::optional<std::string> validate_multi_schedule(
    const dag::Dag& dag, const MultiPlatform& platform,
    const MultiResult& result, double now) {
  std::ostringstream err;
  if (static_cast<int>(result.schedule.tasks.size()) != dag.size() ||
      static_cast<int>(result.cluster_of.size()) != dag.size()) {
    return "schedule does not cover every task";
  }
  constexpr double kTol = 1e-6;

  for (int v = 0; v < dag.size(); ++v) {
    auto vi = static_cast<std::size_t>(v);
    const core::TaskReservation& r = result.schedule.tasks[vi];
    int c = result.cluster_of[vi];
    if (c < 0 || c >= platform.num_clusters()) {
      err << "task " << v << " assigned to unknown cluster " << c;
      return err.str();
    }
    const Cluster& cluster = platform.cluster(c);
    if (r.procs < 1 || r.procs > cluster.procs()) {
      err << "task " << v << " uses " << r.procs << " procs on cluster "
          << cluster.name;
      return err.str();
    }
    if (r.start < now - kTol) {
      err << "task " << v << " starts before the scheduling instant";
      return err.str();
    }
    double expected = cluster.exec_time(dag.cost(v), r.procs);
    if (std::abs((r.finish - r.start) - expected) >
        kTol * std::max(1.0, expected)) {
      err << "task " << v << " duration does not match cluster "
          << cluster.name << " speed";
      return err.str();
    }
    for (int pred : dag.predecessors(v)) {
      if (r.start <
          result.schedule.tasks[static_cast<std::size_t>(pred)].finish -
              kTol) {
        err << "task " << v << " starts before predecessor " << pred
            << " finishes";
        return err.str();
      }
    }
  }

  // Per-cluster capacity replay.
  for (int c = 0; c < platform.num_clusters(); ++c) {
    resv::AvailabilityProfile replay = platform.cluster(c).calendar;
    std::vector<int> members;
    for (int v = 0; v < dag.size(); ++v)
      if (result.cluster_of[static_cast<std::size_t>(v)] == c)
        members.push_back(v);
    std::sort(members.begin(), members.end(), [&](int a, int b) {
      return result.schedule.tasks[static_cast<std::size_t>(a)].start <
             result.schedule.tasks[static_cast<std::size_t>(b)].start;
    });
    for (int v : members) {
      const core::TaskReservation& r =
          result.schedule.tasks[static_cast<std::size_t>(v)];
      if (replay.min_available(r.start, r.finish) < r.procs) {
        err << "task " << v << " over-subscribes cluster "
            << platform.cluster(c).name;
        return err.str();
      }
      replay.add(r.as_reservation());
    }
  }
  return std::nullopt;
}

}  // namespace resched::multi
