// RESSCHEDDL on multi-cluster platforms (extension of paper §7).
//
// Backward scheduling carries over: tasks in increasing bottom-level order
// must finish by the minimum start of their scheduled successors; the
// placement choice gains a cluster dimension.
//
//  * Aggressive (DL_BD generalized): the <cluster, procs, start> triple
//    with the latest start, processor counts bounded by the CPA reference
//    allocation capped per cluster.
//  * Conservative-λ (DL_RCBD_CPAR-λ generalized): a CPA guideline schedule
//    on the reference cluster is stretched to the deadline budget; each
//    task takes the *least-work* triple whose latest feasible start clears
//    the λ-relaxed threshold (work = procs x duration x speed, the natural
//    "fewest processors" on heterogeneous clusters), falling back to the
//    aggressive choice; λ climbs 0 -> 1 until the deadline is met.
#pragma once

#include "src/multi/ressched_multi.hpp"

namespace resched::multi {

enum class MultiDlAlgo {
  kAggressive,         ///< latest-start, CPA-bounded
  kConservativeLambda  ///< λ-adaptive resource-conservative
};

const char* to_string(MultiDlAlgo algo);

struct MultiDeadlineParams {
  MultiDlAlgo algo = MultiDlAlgo::kConservativeLambda;
  double lambda_step = 0.05;
  cpa::Options cpa;
  double history_window = 7 * 86400.0;
};

struct MultiDeadlineResult {
  bool feasible = false;
  core::AppSchedule schedule;
  std::vector<int> cluster_of;
  double cpu_hours = 0.0;     ///< speed-weighted work, as in MultiResult
  double lambda_used = 0.0;
};

/// Attempts to complete the application by `deadline` at time `now`.
MultiDeadlineResult schedule_deadline_multi(
    const dag::Dag& dag, const MultiPlatform& platform, double now,
    double deadline, const MultiDeadlineParams& params = {});

}  // namespace resched::multi
