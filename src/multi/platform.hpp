// Multi-cluster platforms with advance reservations (paper §7's "broader
// question": platforms beyond a single homogeneous cluster).
//
// A platform is a set of clusters, each with its own processor count,
// relative per-processor speed (heterogeneity), and reservation calendar.
// Data-parallel tasks do not span clusters (the paper's file-based
// communication model makes cross-cluster SIMD impractical), so a
// placement is a <cluster, processors, start> triple per task.
#pragma once

#include <string>
#include <vector>

#include "src/dag/task_model.hpp"
#include "src/resv/profile.hpp"
#include "src/util/error.hpp"

namespace resched::multi {

struct Cluster {
  std::string name;
  double speed = 1.0;  ///< relative per-processor speed (1.0 = reference)
  resv::AvailabilityProfile calendar;

  Cluster(std::string cluster_name, int procs, double cluster_speed = 1.0)
      : name(std::move(cluster_name)),
        speed(cluster_speed),
        calendar(procs) {
    RESCHED_CHECK(cluster_speed > 0.0, "cluster speed must be positive");
  }

  int procs() const { return calendar.capacity(); }

  /// Execution time of `cost` on `np` of this cluster's processors.
  double exec_time(const dag::TaskCost& cost, int np) const {
    return dag::exec_time(cost, np) / speed;
  }
};

class MultiPlatform {
 public:
  explicit MultiPlatform(std::vector<Cluster> clusters)
      : clusters_(std::move(clusters)) {
    RESCHED_CHECK(!clusters_.empty(), "platform needs at least one cluster");
  }

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  Cluster& cluster(int c) { return clusters_.at(static_cast<std::size_t>(c)); }
  const Cluster& cluster(int c) const {
    return clusters_.at(static_cast<std::size_t>(c));
  }

  /// Total processors across clusters.
  int total_procs() const;
  /// Largest single-cluster processor count (the upper bound on any one
  /// task's allocation).
  int max_cluster_procs() const;

  /// Historical average availability, per cluster (see
  /// resv::historical_average_available).
  std::vector<int> historical_availability(double now, double window) const;

 private:
  std::vector<Cluster> clusters_;
};

}  // namespace resched::multi
