// RESSCHED on multi-cluster platforms (extension of paper §7).
//
// The single-cluster algorithm carries over with one extra dimension: for
// each task, in decreasing bottom-level order, pick the <cluster,
// processor count, start> triple with the earliest completion among all
// clusters' calendars.
//
//  * bottom levels — BL_CPAR generalized: CPA allocations computed for a
//    "reference cluster" whose size is the largest per-cluster historical
//    availability and whose speed is the fastest cluster's (cf. the
//    reference-cluster device of the heterogeneous mixed-parallel
//    literature [34]);
//  * allocation bounds — the same CPA allocations, additionally capped per
//    cluster by its size (BD_CPAR generalized).
//
// bench_ext_multicluster uses this to quantify the cost of fragmentation
// (one big cluster vs the same processors split 2- and 4-ways) and the
// pull of heterogeneity (a small fast cluster next to a large slow one).
#pragma once

#include "src/core/schedule.hpp"
#include "src/cpa/cpa.hpp"
#include "src/dag/dag.hpp"
#include "src/multi/platform.hpp"

namespace resched::multi {

struct MultiParams {
  cpa::Options cpa;
  /// History window for the availability estimates [seconds].
  double history_window = 7 * 86400.0;
};

struct MultiResult {
  core::AppSchedule schedule;      ///< per-task reservations
  std::vector<int> cluster_of;     ///< cluster index per task
  double turnaround = 0.0;
  /// Consumed processor-hours, speed-weighted (an hour on a speed-2
  /// processor counts double — the work actually bought).
  double cpu_hours = 0.0;
};

/// Schedules the application at `now`; does not modify `platform`.
MultiResult schedule_ressched_multi(const dag::Dag& dag,
                                    const MultiPlatform& platform, double now,
                                    const MultiParams& params = {});

/// Validity checker for multi-cluster schedules: per-cluster capacity,
/// precedence, speed-adjusted durations. Returns std::nullopt when valid.
std::optional<std::string> validate_multi_schedule(
    const dag::Dag& dag, const MultiPlatform& platform,
    const MultiResult& result, double now);

}  // namespace resched::multi
