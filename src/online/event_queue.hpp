// Deterministic discrete-event queue for the online scheduling engine.
//
// The online mode (DESIGN.md "Online mode") turns the offline evaluator
// into a long-running service: DAG submissions and external advance
// reservations arrive as a time-ordered stream, and the engine reacts to
// five event kinds — submission, reservation start, reservation end, task
// completion, and disruption (the fault-tolerance subsystem's injection
// point, DESIGN.md §8). Correct replay demands *total* determinism, so ties
// in event time are broken by a monotonically increasing sequence number
// assigned at push time: events at the same instant are processed strictly
// FIFO, independent of heap internals, platform, or build flags.
//
// The heap is an explicit vector managed with std::push_heap/pop_heap so
// the pending-event set can be snapshotted and restored bit-exactly — the
// checkpoint/restore path (src/ft/checkpoint.*) depends on that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace resched::online {

enum class EventType {
  kSubmission,        ///< a DAG application (or external AR) arrives
  kReservationStart,  ///< a committed reservation begins holding processors
  kReservationEnd,    ///< an external reservation releases its processors
  kTaskCompletion,    ///< a task reservation ends; the task is finished
  kDisruption,        ///< a fault-tolerance disruption strikes (src/ft/)
};

const char* to_string(EventType type);

/// One engine event. `seq` is assigned by EventQueue::push and identifies
/// the event uniquely within one engine run. `aux` and `version` are
/// fault-tolerance bookkeeping (external-reservation / disruption id and
/// placement version); they are never written to traces, so the JSONL
/// schema is unchanged.
struct Event {
  double time = 0.0;
  EventType type = EventType::kSubmission;
  int job = -1;    ///< job id; -1 for external reservation events
  int task = -1;   ///< task id within the job; -1 otherwise
  int procs = 0;   ///< processors involved (reservation events)
  std::uint64_t seq = 0;
  int aux = -1;     ///< external-reservation id / disruption id; -1 otherwise
  int version = 0;  ///< placement version the event was pushed for
};

/// Time-ordered min-heap of events with stable FIFO tie-breaking by `seq`.
class EventQueue {
 public:
  /// Enqueues the event, assigning the next sequence number; returns it.
  std::uint64_t push(Event e);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// The earliest event (ties: lowest seq). Queue must be non-empty.
  const Event& peek() const;

  /// Removes and returns the earliest event. Queue must be non-empty.
  Event pop();

  /// Sequence number the next push will receive.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Consumes and returns the next sequence number without enqueueing an
  /// event — for engine actions that are not queue events but still need a
  /// unique, deterministic position in the (time, seq) trace order (job
  /// cancellation, DESIGN.md §10). Checkpoints persist next_seq, so
  /// allocation replays identically across kill-and-resume.
  std::uint64_t allocate_seq() { return next_seq_++; }

  /// Every pending event, sorted by (time, seq) — a deterministic image of
  /// the queue for checkpointing. The queue itself is unchanged.
  std::vector<Event> snapshot() const;

  /// Replaces the queue contents with `events` (their stored seq numbers
  /// are kept verbatim) and sets the next sequence number. Used by
  /// checkpoint restore; `next` must exceed every restored seq.
  void restore(std::vector<Event> events, std::uint64_t next);

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace resched::online
