// Online-mode metrics: per-job service quality plus engine-level rates.
//
// The offline evaluation aggregates degradation-from-best across scenario
// grids (src/sim/metrics.*); a long-running engine instead reports the
// classic online scheduling metrics — per-job turn-around, wait, and
// stretch, the admission acceptance rate, and a utilization timeline (busy
// processors as a step function of time). Summaries render through the same
// sim::TextTable used by the bench harnesses.
#pragma once

#include <vector>

#include "src/sim/table.hpp"

namespace resched::ft {
struct ServiceAccess;
}  // namespace resched::ft

namespace resched::online {

/// Admission decision for one submission.
enum class Decision {
  kAccepted,        ///< scheduled as requested (deadline met, if any)
  kCounterOffered,  ///< requested deadline infeasible; scheduled at the
                    ///< earliest feasible deadline the submitter accepted
  kRejected,        ///< not scheduled (infeasible and no acceptable offer)
};

const char* to_string(Decision decision);

/// One step of the busy-processor timeline: `used` processors are held from
/// `time` until the next point.
struct UtilizationPoint {
  double time = 0.0;
  int used = 0;
};

/// Accumulates per-job records and the utilization timeline. All recording
/// happens at event-processing time, so times arrive non-decreasing.
class OnlineMetrics {
 public:
  explicit OnlineMetrics(int capacity);

  int capacity() const { return capacity_; }

  void record_decision(Decision decision);
  /// Called when a job's last task completes.
  void record_completion(double submit, double first_start, double finish,
                         double cpu_hours);
  /// Called whenever the number of busy processors changes.
  void record_usage(double time, int used);

  int submitted() const { return submitted_; }
  int accepted() const { return accepted_; }
  int counter_offered() const { return counter_offered_; }
  int rejected() const { return rejected_; }
  int completed() const { return static_cast<int>(turnaround_.size()); }

  /// Fraction of submissions scheduled (accepted or counter-offered).
  double acceptance_rate() const;

  double mean_turnaround() const;  ///< finish − submit
  double mean_wait() const;        ///< first task start − submit
  /// Turn-around divided by the job's own reserved span (finish − first
  /// start): 1.0 means the job started the instant it was submitted.
  double mean_stretch() const;
  double total_cpu_hours() const { return total_cpu_hours_; }

  const std::vector<UtilizationPoint>& usage_timeline() const {
    return timeline_;
  }

  /// Time-average busy fraction over [from, to), from < to, computed from
  /// the usage timeline.
  double utilization(double from, double to) const;

  /// Two-column summary ("metric", "value") for CLI output.
  sim::TextTable summary_table() const;

 private:
  friend struct ::resched::ft::ServiceAccess;  // checkpoint serialization

  int capacity_;
  int submitted_ = 0;
  int accepted_ = 0;
  int counter_offered_ = 0;
  int rejected_ = 0;
  std::vector<double> turnaround_;
  std::vector<double> wait_;
  std::vector<double> stretch_;
  double total_cpu_hours_ = 0.0;
  std::vector<UtilizationPoint> timeline_;
};

}  // namespace resched::online
