#include "src/online/replay.hpp"

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace resched::online {

namespace {
/// Seed namespace tags (must not collide within one derive_seed call site).
enum SeedTag : std::uint64_t { kTagDag = 1, kTagDeadline = 2 };
}  // namespace

JobSubmission submission_for_job(const workload::Job& job, int index,
                                 const ReplaySpec& spec) {
  RESCHED_CHECK(spec.deadline_fraction >= 0.0 && spec.deadline_fraction <= 1.0,
                "deadline fraction must lie in [0, 1]");
  RESCHED_CHECK(spec.deadline_slack > 0.0, "deadline slack must be positive");
  util::Rng dag_rng(util::derive_seed(
      spec.seed, {kTagDag, static_cast<std::uint64_t>(index)}));
  JobSubmission sub{index, job.submit, dag::generate(spec.app, dag_rng),
                    std::nullopt};

  util::Rng dl_rng(util::derive_seed(
      spec.seed, {kTagDeadline, static_cast<std::uint64_t>(index)}));
  if (dl_rng.bernoulli(spec.deadline_fraction)) {
    // Serial critical path: every task on one processor — an upper bound
    // on useful work along the longest chain, so slack ~1 is demanding
    // on a loaded platform and slack >~3 is usually comfortable.
    std::vector<int> ones(static_cast<std::size_t>(sub.dag.size()), 1);
    double cp = dag::critical_path_length(sub.dag, ones);
    sub.deadline = sub.submit + spec.deadline_slack * cp;
  }
  return sub;
}

std::vector<JobSubmission> submissions_from_log(const workload::Log& log,
                                                const ReplaySpec& spec) {
  int n = static_cast<int>(log.jobs.size());
  if (spec.max_jobs > 0) n = std::min(n, spec.max_jobs);

  std::vector<JobSubmission> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back(
        submission_for_job(log.jobs[static_cast<std::size_t>(i)], i, spec));
  return out;
}

}  // namespace resched::online
