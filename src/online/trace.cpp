#include "src/online/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/util/error.hpp"

namespace resched::online {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string to_json_line(const TraceRecord& record) {
  RESCHED_CHECK(record.type.find('"') == std::string::npos &&
                    record.type.find('\\') == std::string::npos,
                "trace type names must not need JSON escaping");
  std::ostringstream os;
  os << '{';
  if (record.shard >= 0) os << "\"shard\":" << record.shard << ',';
  os << "\"seq\":" << record.seq << ",\"t\":" << format_double(record.time)
     << ",\"type\":\"" << record.type << "\",\"job\":" << record.job
     << ",\"task\":" << record.task << ",\"procs\":" << record.procs
     << ",\"value\":" << format_double(record.value) << '}';
  return os.str();
}

void TraceWriter::write(const TraceRecord& record) {
  if (shard_ >= 0 && record.shard < 0) {
    TraceRecord tagged = record;
    tagged.shard = shard_;
    *out_ << to_json_line(tagged) << '\n';
    return;
  }
  *out_ << to_json_line(record) << '\n';
}

namespace {

/// Cursor over one line; the schema has a fixed key order, so parsing is a
/// straight left-to-right scan.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  void expect(const char* literal) {
    std::size_t len = std::char_traits<char>::length(literal);
    RESCHED_CHECK(line_.compare(pos_, len, literal) == 0,
                  "malformed trace line: expected '" + std::string(literal) +
                      "' in: " + line_);
    pos_ += len;
  }

  double number() {
    const char* begin = line_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    RESCHED_CHECK(end != begin, "malformed trace number in: " + line_);
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string quoted_string() {
    expect("\"");
    std::size_t close = line_.find('"', pos_);
    RESCHED_CHECK(close != std::string::npos,
                  "unterminated trace string in: " + line_);
    std::string s = line_.substr(pos_, close - pos_);
    pos_ = close + 1;
    return s;
  }

  void expect_end() {
    RESCHED_CHECK(pos_ == line_.size(),
                  "trailing characters in trace line: " + line_);
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace

TraceRecord parse_trace_line(const std::string& line) {
  LineParser p(line);
  TraceRecord r;
  p.expect("{");
  if (line.compare(1, 8, "\"shard\":") == 0) {
    p.expect("\"shard\":");
    r.shard = static_cast<int>(p.number());
    RESCHED_CHECK(r.shard >= 0, "trace shard id must be >= 0 in: " + line);
    p.expect(",");
  }
  p.expect("\"seq\":");
  r.seq = static_cast<std::uint64_t>(p.number());
  p.expect(",\"t\":");
  r.time = p.number();
  p.expect(",\"type\":");
  r.type = p.quoted_string();
  p.expect(",\"job\":");
  r.job = static_cast<int>(p.number());
  p.expect(",\"task\":");
  r.task = static_cast<int>(p.number());
  p.expect(",\"procs\":");
  r.procs = static_cast<int>(p.number());
  p.expect(",\"value\":");
  r.value = p.number();
  p.expect("}");
  p.expect_end();
  return r;
}

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(parse_trace_line(line));
  }
  return records;
}

std::vector<TraceRecord> merge_traces(
    std::vector<std::vector<TraceRecord>> shards) {
  std::vector<TraceRecord> merged;
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (TraceRecord& r : shards[i])
      if (r.shard < 0) r.shard = static_cast<int>(i);
    total += shards[i].size();
  }
  merged.reserve(total);
  for (std::vector<TraceRecord>& s : shards)
    merged.insert(merged.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
  // Each input is time-ordered already, so this is a k-way merge in
  // disguise; stable_sort keeps per-shard seq order without comparing it
  // twice and the explicit key makes the contract self-documenting.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.shard != b.shard) return a.shard < b.shard;
                     return a.seq < b.seq;
                   });
  return merged;
}

}  // namespace resched::online
