#include "src/online/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/util/error.hpp"

namespace resched::online {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string to_json_line(const TraceRecord& record) {
  RESCHED_CHECK(record.type.find('"') == std::string::npos &&
                    record.type.find('\\') == std::string::npos,
                "trace type names must not need JSON escaping");
  std::ostringstream os;
  os << "{\"seq\":" << record.seq << ",\"t\":" << format_double(record.time)
     << ",\"type\":\"" << record.type << "\",\"job\":" << record.job
     << ",\"task\":" << record.task << ",\"procs\":" << record.procs
     << ",\"value\":" << format_double(record.value) << '}';
  return os.str();
}

void TraceWriter::write(const TraceRecord& record) {
  *out_ << to_json_line(record) << '\n';
}

namespace {

/// Cursor over one line; the schema has a fixed key order, so parsing is a
/// straight left-to-right scan.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  void expect(const char* literal) {
    std::size_t len = std::char_traits<char>::length(literal);
    RESCHED_CHECK(line_.compare(pos_, len, literal) == 0,
                  "malformed trace line: expected '" + std::string(literal) +
                      "' in: " + line_);
    pos_ += len;
  }

  double number() {
    const char* begin = line_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    RESCHED_CHECK(end != begin, "malformed trace number in: " + line_);
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string quoted_string() {
    expect("\"");
    std::size_t close = line_.find('"', pos_);
    RESCHED_CHECK(close != std::string::npos,
                  "unterminated trace string in: " + line_);
    std::string s = line_.substr(pos_, close - pos_);
    pos_ = close + 1;
    return s;
  }

  void expect_end() {
    RESCHED_CHECK(pos_ == line_.size(),
                  "trailing characters in trace line: " + line_);
  }

 private:
  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace

TraceRecord parse_trace_line(const std::string& line) {
  LineParser p(line);
  TraceRecord r;
  p.expect("{\"seq\":");
  r.seq = static_cast<std::uint64_t>(p.number());
  p.expect(",\"t\":");
  r.time = p.number();
  p.expect(",\"type\":");
  r.type = p.quoted_string();
  p.expect(",\"job\":");
  r.job = static_cast<int>(p.number());
  p.expect(",\"task\":");
  r.task = static_cast<int>(p.number());
  p.expect(",\"procs\":");
  r.procs = static_cast<int>(p.number());
  p.expect(",\"value\":");
  r.value = p.number();
  p.expect("}");
  p.expect_end();
  return r;
}

std::vector<TraceRecord> read_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    records.push_back(parse_trace_line(line));
  }
  return records;
}

}  // namespace resched::online
