#include "src/online/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/obs.hpp"
#include "src/util/error.hpp"

namespace resched::online {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SchedulerService::SchedulerService(ServiceConfig config)
    : config_(std::move(config)),
      owned_profile_(std::in_place, config_.capacity),
      profile_(&*owned_profile_),
      metrics_(config_.capacity),
      now_(-kInf) {
  RESCHED_CHECK(config_.history_window > 0.0,
                "history window must be positive");
  RESCHED_CHECK(config_.counter_offer_limit > 0.0,
                "counter-offer limit must be positive");
}

SchedulerService::SchedulerService(ServiceConfig config,
                                   resv::AvailabilityProfile& calendar)
    : config_(std::move(config)),
      profile_(&calendar),
      metrics_(config_.capacity),
      now_(-kInf) {
  RESCHED_CHECK(config_.history_window > 0.0,
                "history window must be positive");
  RESCHED_CHECK(config_.counter_offer_limit > 0.0,
                "counter-offer limit must be positive");
  RESCHED_CHECK(calendar.capacity() == config_.capacity,
                "bound calendar capacity must match the engine's config");
}

void SchedulerService::submit(JobSubmission job) {
  RESCHED_CHECK(job.submit >= now_,
                "submission in the engine's past (submit < now)");
  RESCHED_CHECK(job.dag.size() >= 1, "submitted DAG must have tasks");
  if (job.deadline)
    RESCHED_CHECK(*job.deadline > job.submit,
                  "deadline must lie after the submission instant");
  if (wal_hook_) {
    WalOp op;
    op.kind = WalOp::Kind::kSubmit;
    op.time = job.submit;
    op.job = &job;
    wal_hook_(op);
  }
  Event e;
  e.time = job.submit;
  e.type = EventType::kSubmission;
  e.job = job.job_id;
  std::uint64_t seq = queue_.push(e);
  pending_jobs_.emplace(seq, std::move(job));
}

void SchedulerService::submit_reservation(double arrival,
                                          const resv::Reservation& r) {
  RESCHED_CHECK(arrival >= now_,
                "reservation arrival in the engine's past");
  RESCHED_CHECK(r.start >= arrival,
                "external reservation must start at or after its arrival");
  RESCHED_CHECK(r.start < r.end, "reservation must have positive duration");
  RESCHED_CHECK(r.procs >= 1, "reservation must hold processors");
  if (wal_hook_) {
    WalOp op;
    op.kind = WalOp::Kind::kReservation;
    op.time = arrival;
    op.resv = &r;
    wal_hook_(op);
  }
  Event e;
  e.time = arrival;
  e.type = EventType::kSubmission;
  e.procs = r.procs;
  std::uint64_t seq = queue_.push(e);
  pending_resv_.emplace(seq, r);
}

bool SchedulerService::cancel_job(double t, int job_id) {
  RESCHED_CHECK(t >= now_, "cancellation in the engine's past");
  // Drain the stream up to the cancellation instant first: events at or
  // before t (task starts, completions — possibly the job's own last one)
  // decide what is still cancellable.
  run_until(t);
  auto it = live_jobs_.find(job_id);
  if (it == live_jobs_.end()) return false;
  if (wal_hook_) {
    WalOp op;
    op.kind = WalOp::Kind::kCancel;
    op.time = t;
    op.job_id = job_id;
    wal_hook_(op);
  }
  OBS_PHASE("online.cancel_job");
  // Version-bumped placements leave their queued events stale — the same
  // debris a repair eviction produces, so cancellation runs in ft mode.
  ft_active_ = true;
  int released = 0;
  for (LiveTask& task : it->second.tasks) {
    if (task.state == LiveTask::State::kDone) continue;
    ++task.version;
    if (!task.placed) continue;
    const resv::Reservation r = task.r.as_reservation();
    profile_->release(r);
    erase_committed(r);
    ++released;
    if (task.state == LiveTask::State::kRunning) {
      // The elapsed [start, t) slice genuinely ran; keep its footprint.
      if (t > task.r.start) {
        const resv::Reservation stub{task.r.start, t, task.r.procs};
        profile_->add(stub);
        committed_.push_back(stub);
      }
      change_usage(t, -task.r.procs);
    }
    task.placed = false;
  }
  // Released capacity can pull admission floors down — precomputed floor
  // hints from before this point are no longer lower bounds.
  release_epoch_ = profile_->epoch();
  // The cancel takes a real sequence number (allocated whether or not a
  // trace is attached, so state evolution is trace-independent) and lands
  // in the (time, seq) total order like any other record.
  const std::uint64_t seq = queue_.allocate_seq();
  if (trace_ != nullptr)
    trace_->write({seq, t, "cancel", job_id, -1, released, 0.0});
  OBS_COUNT("online.cancelled", 1);
  retired_jobs_.insert(job_id);
  live_jobs_.erase(it);
  return true;
}

void SchedulerService::erase_committed(const resv::Reservation& r) {
  for (auto rit = committed_.rbegin(); rit != committed_.rend(); ++rit) {
    if (rit->start == r.start && rit->end == r.end && rit->procs == r.procs) {
      committed_.erase(std::next(rit).base());
      return;
    }
  }
  RESCHED_ASSERT(false, "released placement missing from the committed list");
}

void SchedulerService::set_disruption_handler(DisruptionHandler handler) {
  disruption_handler_ = std::move(handler);
  if (disruption_handler_) ft_active_ = true;
}

void SchedulerService::set_conflict_handler(ConflictHandler handler) {
  conflict_handler_ = std::move(handler);
  if (conflict_handler_) ft_active_ = true;
}

std::uint64_t SchedulerService::submit_disruption(double t, int id) {
  RESCHED_CHECK(t >= now_, "disruption in the engine's past");
  RESCHED_CHECK(ft_active_,
                "register a disruption handler before submitting disruptions");
  Event e;
  e.time = t;
  e.type = EventType::kDisruption;
  e.aux = id;
  return queue_.push(e);
}

void SchedulerService::run_until(double t) {
  while (!queue_.empty() && queue_.peek().time <= t) process(queue_.pop());
  now_ = std::max(now_, t);
}

void SchedulerService::run_all() {
  while (!queue_.empty()) process(queue_.pop());
}

void SchedulerService::process(const Event& e) {
  // Per-event service latency (histogram) and span; queue depth includes
  // the event being processed.
  OBS_PHASE("online.event");
  OBS_HIST("online.queue_depth", queue_.size() + 1);
  now_ = e.time;
  ++events_processed_;
  switch (e.type) {
    case EventType::kSubmission:
      handle_submission(e);
      return;
    case EventType::kReservationStart:
      handle_reservation_start(e);
      return;
    case EventType::kReservationEnd:
      handle_reservation_end(e);
      return;
    case EventType::kTaskCompletion:
      handle_task_completion(e);
      return;
    case EventType::kDisruption:
      trace_event(e, static_cast<double>(e.aux));
      RESCHED_ASSERT(disruption_handler_,
                     "disruption event without a registered handler");
      disruption_handler_(e.time, e.seq, e.aux);
      return;
  }
}

void SchedulerService::handle_reservation_start(const Event& e) {
  if (e.job < 0) {  // external reservation
    auto it = externals_.find(e.aux);
    if (it == externals_.end() || it->second.version != e.version) {
      note_stale(e);
      return;
    }
    it->second.started = true;
    trace_event(e);
    change_usage(e.time, e.procs);
    return;
  }
  LiveTask* task = find_live_task(e.job, e.task);
  if (task == nullptr || task->version != e.version ||
      task->state != LiveTask::State::kPending) {
    note_stale(e);
    return;
  }
  task->state = LiveTask::State::kRunning;
  trace_event(e);
  change_usage(e.time, e.procs);
}

void SchedulerService::handle_reservation_end(const Event& e) {
  auto it = externals_.find(e.aux);
  if (it == externals_.end() || it->second.version != e.version) {
    note_stale(e);
    return;
  }
  externals_.erase(it);
  trace_event(e);
  change_usage(e.time, -e.procs);
}

void SchedulerService::handle_task_completion(const Event& e) {
  LiveTask* task = find_live_task(e.job, e.task);
  if (task == nullptr || task->version != e.version ||
      task->state != LiveTask::State::kRunning) {
    note_stale(e);
    return;
  }
  task->state = LiveTask::State::kDone;
  trace_event(e);
  change_usage(e.time, -e.procs);
  auto it = live_jobs_.find(e.job);
  RESCHED_ASSERT(it != live_jobs_.end() && it->second.remaining_tasks > 0,
                 "task completion for a job that is not live");
  if (--it->second.remaining_tasks == 0) {
    const LiveJob& job = it->second;
    double first_start = kInf, finish = -kInf, cpu_hours = 0.0;
    for (const LiveTask& t : job.tasks) {
      first_start = std::min(first_start, t.r.start);
      finish = std::max(finish, t.r.finish);
      cpu_hours += static_cast<double>(t.r.procs) * (t.r.finish - t.r.start) /
                   3600.0;
    }
    metrics_.record_completion(job.submit, first_start, finish, cpu_hours);
    retired_jobs_.insert(it->first);
    live_jobs_.erase(it);
  }
}

void SchedulerService::note_stale(const Event& e) {
  RESCHED_ASSERT(ft_active_,
                 "version-mismatched event without an active disruption "
                 "handler (engine bug)");
  // Stale events are expected debris of repair: the placement they were
  // pushed for was invalidated (or its job retired) before they fired.
  RESCHED_ASSERT(e.job < 0 || live_jobs_.count(e.job) > 0 ||
                     retired_jobs_.count(e.job) > 0,
                 "stale event for a job the engine never admitted");
  ++stale_events_;
  OBS_COUNT("ft.stale_events", 1);
}

SchedulerService::LiveTask* SchedulerService::find_live_task(int job,
                                                             int task) {
  auto it = live_jobs_.find(job);
  if (it == live_jobs_.end()) return nullptr;
  if (task < 0 || task >= static_cast<int>(it->second.tasks.size()))
    return nullptr;
  return &it->second.tasks[static_cast<std::size_t>(task)];
}

void SchedulerService::handle_submission(const Event& e) {
  if (auto rit = pending_resv_.find(e.seq); rit != pending_resv_.end()) {
    // External advance reservation: committed verbatim on arrival.
    const resv::Reservation r = rit->second;
    pending_resv_.erase(rit);
    trace_event(e, r.start);
    profile_->add(r);
    committed_.push_back(r);
    int ext = next_external_id_++;
    externals_.emplace(ext, ExternalResv{r, 0, false});
    queue_.push(
        {r.start, EventType::kReservationStart, -1, -1, r.procs, 0, ext, 0});
    queue_.push(
        {r.end, EventType::kReservationEnd, -1, -1, r.procs, 0, ext, 0});
    // The reservation was unknown until now; placements made before it
    // arrived may collide with it (§6 blind scenario). Let the repair
    // engine resolve the over-subscription it just caused.
    if (conflict_handler_) conflict_handler_(e.time, e.seq);
    return;
  }
  auto jit = pending_jobs_.find(e.seq);
  RESCHED_ASSERT(jit != pending_jobs_.end(),
                 "submission event without a pending payload");
  JobSubmission job = std::move(jit->second);
  pending_jobs_.erase(jit);
  trace_event(e, job.deadline.value_or(0.0));
  schedule_job(job, e.time, e.seq);
}

void SchedulerService::schedule_job(const JobSubmission& job, double t,
                                    std::uint64_t seq) {
  RESCHED_CHECK(live_jobs_.find(job.job_id) == live_jobs_.end(),
                "job id already live in the engine");
  RESCHED_CHECK(!ft_active_ || retired_jobs_.count(job.job_id) == 0,
                "job id reuse is not allowed in fault-tolerant mode (stale "
                "events could cross generations)");
  // One-shot: the hint was armed for exactly this admission.
  const std::optional<FloorHint> hint =
      std::exchange(floor_hint_, std::nullopt);
  OBS_PHASE("online.schedule_job");
  if (config_.compact_calendar) {
    OBS_COUNT("online.compactions", 1);
    profile_->compact(t - config_.history_window);
  }
  int q_hist =
      resv::historical_average_available(*profile_, t, config_.history_window);

  if (!job.deadline) {
    auto res =
        core::schedule_ressched(job.dag, *profile_, t, q_hist, config_.ressched);
    commit_schedule(job, t, seq, res.schedule, Decision::kAccepted, kNaN);
    return;
  }

  // Batched admission pre-filter: one earliest-fit query per task against
  // the frozen calendar lower-bounds every task's finish. A requested
  // deadline below the floor is provably unmeetable, so the full backward
  // pass is skipped and the submission goes straight to rejection or
  // counter-offer — exactly where the failed pass would have sent it. The
  // snapshot refresh is an epoch compare when nothing was admitted or
  // released since the previous probe, so back-to-back rejected deadline
  // jobs never re-freeze the calendar. A batched caller (reschedd flush
  // drain) may have precomputed this job's floor against one shared
  // snapshot; the hint is honored when it is provably still a lower bound
  // (no release/rollback since, no fault-tolerance handlers rewriting the
  // calendar behind the engine's back).
  double floor;
  if (hint && !ft_active_ && hint->epoch >= release_epoch_) {
    OBS_COUNT("online.floor_hints_used", 1);
    floor = hint->floor;
  } else {
    core::finish_floor_queries(job.dag, profile_->capacity(), t,
                               floor_queries_);
    floor_snapshot_.refresh(*profile_);
    floor = core::evaluate_finish_floor(floor_queries_, floor_snapshot_, t);
  }
  core::DeadlineResult dl;
  if (*job.deadline >= floor)
    dl = core::schedule_deadline(job.dag, *profile_, t, q_hist, *job.deadline,
                                 config_.deadline);
  if (dl.feasible) {
    commit_schedule(job, t, seq, dl.schedule, Decision::kAccepted, kNaN);
    return;
  }
  if (config_.admission == AdmissionPolicy::kRejectInfeasible) {
    reject(job, t, seq, kNaN);
    return;
  }
  // Counter-offer: binary-search the earliest feasible deadline on the live
  // calendar (§5.3's tightest-deadline machinery) and tentatively commit
  // the schedule achieving it; the submitter's stretch rule then accepts or
  // rolls back.
  auto tight = core::tightest_deadline(job.dag, *profile_, t, q_hist,
                                       config_.deadline, config_.tightest);
  RESCHED_ASSERT(tight.at_deadline.feasible,
                 "tightest-deadline search must end feasible");
  commit_schedule(job, t, seq, tight.at_deadline.schedule,
                  Decision::kCounterOffered, tight.deadline);
}

void SchedulerService::commit_schedule(const JobSubmission& job, double t,
                                       std::uint64_t seq,
                                       const core::AppSchedule& schedule,
                                       Decision decision,
                                       double counter_offer) {
  resv::ReservationList rs;
  rs.reserve(schedule.tasks.size());
  for (const core::TaskReservation& task : schedule.tasks)
    rs.push_back(task.as_reservation());

  // Audit snapshot: a rejected (rolled-back) admission must leave the
  // calendar byte-identical.
  std::vector<std::pair<double, int>> audit_before;
  if (config_.audit_rollback) audit_before = profile_->canonical_steps();

  resv::AvailabilityProfile::CommitToken token = profile_->commit(rs);
  if (decision == Decision::kCounterOffered &&
      std::isfinite(config_.counter_offer_limit) &&
      counter_offer - t > config_.counter_offer_limit * (*job.deadline - t)) {
    profile_->rollback(token);
    // The rollback restored availability — older floor hints may now
    // over-estimate and must not be trusted.
    release_epoch_ = profile_->epoch();
    if (config_.audit_rollback)
      RESCHED_ASSERT(profile_->canonical_steps() == audit_before,
                     "rollback left the calendar different from the "
                     "pre-commit state");
    reject(job, t, seq, counter_offer);
    return;
  }
  committed_.insert(committed_.end(), rs.begin(), rs.end());

  double start = kInf, finish = -kInf;
  for (const core::TaskReservation& task : schedule.tasks) {
    start = std::min(start, task.start);
    finish = std::max(finish, task.finish);
  }
  LiveJob live{job.dag, job.deadline, job.submit,
               static_cast<int>(schedule.tasks.size()),
               std::vector<LiveTask>()};
  live.tasks.reserve(schedule.tasks.size());
  for (const core::TaskReservation& task : schedule.tasks)
    live.tasks.push_back(LiveTask{task, 0, LiveTask::State::kPending, 1});
  live_jobs_.emplace(job.job_id, std::move(live));

  JobOutcome outcome;
  outcome.job_id = job.job_id;
  outcome.decision = decision;
  outcome.submit = job.submit;
  outcome.requested_deadline = job.deadline.value_or(kNaN);
  outcome.counter_offer = counter_offer;
  outcome.start = start;
  outcome.finish = finish;
  outcome.cpu_hours = schedule.cpu_hours();
  outcome.schedule = schedule;
  outcomes_.push_back(std::move(outcome));

  if (decision == Decision::kCounterOffered)
    OBS_COUNT("online.counter_offered", 1);
  else
    OBS_COUNT("online.accepted", 1);
  metrics_.record_decision(decision);
  trace_decision(seq, t, decision, job.job_id,
                 decision == Decision::kCounterOffered ? counter_offer
                                                       : finish);

  for (int i = 0; i < static_cast<int>(schedule.tasks.size()); ++i) {
    const core::TaskReservation& task = schedule.tasks[i];
    queue_.push({task.start, EventType::kReservationStart, job.job_id, i,
                 task.procs, 0, -1, 0});
    queue_.push({task.finish, EventType::kTaskCompletion, job.job_id, i,
                 task.procs, 0, -1, 0});
  }
}

void SchedulerService::reject(const JobSubmission& job, double t,
                              std::uint64_t seq, double counter_offer) {
  JobOutcome outcome;
  outcome.job_id = job.job_id;
  outcome.decision = Decision::kRejected;
  outcome.submit = job.submit;
  outcome.requested_deadline = job.deadline.value_or(kNaN);
  outcome.counter_offer = counter_offer;
  outcome.start = kNaN;
  outcome.finish = kNaN;
  outcomes_.push_back(std::move(outcome));
  OBS_COUNT("online.rejected", 1);
  metrics_.record_decision(Decision::kRejected);
  trace_decision(seq, t, Decision::kRejected, job.job_id,
                 job.deadline.value_or(kNaN));
}

void SchedulerService::change_usage(double t, int delta) {
  used_procs_ += delta;
  RESCHED_ASSERT(used_procs_ >= 0, "busy processor count went negative");
  metrics_.record_usage(t, used_procs_);
}

void SchedulerService::trace_event(const Event& e, double value) {
  if (!trace_) return;
  trace_->write({e.seq, e.time, to_string(e.type), e.job, e.task, e.procs,
                 value});
}

void SchedulerService::trace_decision(std::uint64_t seq, double t,
                                      Decision decision, int job,
                                      double value) {
  if (!trace_) return;
  trace_->write({seq, t, to_string(decision), job, -1, 0, value});
}

}  // namespace resched::online
