#include "src/online/service.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.hpp"
#include "src/util/error.hpp"

namespace resched::online {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SchedulerService::SchedulerService(ServiceConfig config)
    : config_(std::move(config)),
      profile_(config_.capacity),
      metrics_(config_.capacity),
      now_(-kInf) {
  RESCHED_CHECK(config_.history_window > 0.0,
                "history window must be positive");
  RESCHED_CHECK(config_.counter_offer_limit > 0.0,
                "counter-offer limit must be positive");
}

void SchedulerService::submit(JobSubmission job) {
  RESCHED_CHECK(job.submit >= now_,
                "submission in the engine's past (submit < now)");
  RESCHED_CHECK(job.dag.size() >= 1, "submitted DAG must have tasks");
  if (job.deadline)
    RESCHED_CHECK(*job.deadline > job.submit,
                  "deadline must lie after the submission instant");
  Event e;
  e.time = job.submit;
  e.type = EventType::kSubmission;
  e.job = job.job_id;
  std::uint64_t seq = queue_.push(e);
  pending_jobs_.emplace(seq, std::move(job));
}

void SchedulerService::submit_reservation(double arrival,
                                          const resv::Reservation& r) {
  RESCHED_CHECK(arrival >= now_,
                "reservation arrival in the engine's past");
  RESCHED_CHECK(r.start >= arrival,
                "external reservation must start at or after its arrival");
  RESCHED_CHECK(r.start < r.end, "reservation must have positive duration");
  RESCHED_CHECK(r.procs >= 1, "reservation must hold processors");
  Event e;
  e.time = arrival;
  e.type = EventType::kSubmission;
  e.procs = r.procs;
  std::uint64_t seq = queue_.push(e);
  pending_resv_.emplace(seq, r);
}

void SchedulerService::run_until(double t) {
  while (!queue_.empty() && queue_.peek().time <= t) process(queue_.pop());
  now_ = std::max(now_, t);
}

void SchedulerService::run_all() {
  while (!queue_.empty()) process(queue_.pop());
}

void SchedulerService::process(const Event& e) {
  // Per-event service latency (histogram) and span; queue depth includes
  // the event being processed.
  OBS_PHASE("online.event");
  OBS_HIST("online.queue_depth", queue_.size() + 1);
  now_ = e.time;
  switch (e.type) {
    case EventType::kSubmission:
      handle_submission(e);
      return;
    case EventType::kReservationStart:
      trace_event(e);
      change_usage(e.time, e.procs);
      return;
    case EventType::kReservationEnd:
      trace_event(e);
      change_usage(e.time, -e.procs);
      return;
    case EventType::kTaskCompletion: {
      trace_event(e);
      change_usage(e.time, -e.procs);
      auto it = live_jobs_.find(e.job);
      RESCHED_ASSERT(it != live_jobs_.end() && it->second.remaining_tasks > 0,
                     "task completion for a job that is not live");
      if (--it->second.remaining_tasks == 0) {
        const LiveJob& job = it->second;
        metrics_.record_completion(job.submit, job.first_start, job.finish,
                                   job.cpu_hours);
        live_jobs_.erase(it);
      }
      return;
    }
  }
}

void SchedulerService::handle_submission(const Event& e) {
  if (auto rit = pending_resv_.find(e.seq); rit != pending_resv_.end()) {
    // External advance reservation: committed verbatim on arrival.
    const resv::Reservation r = rit->second;
    pending_resv_.erase(rit);
    trace_event(e, r.start);
    profile_.add(r);
    committed_.push_back(r);
    queue_.push({r.start, EventType::kReservationStart, -1, -1, r.procs, 0});
    queue_.push({r.end, EventType::kReservationEnd, -1, -1, r.procs, 0});
    return;
  }
  auto jit = pending_jobs_.find(e.seq);
  RESCHED_ASSERT(jit != pending_jobs_.end(),
                 "submission event without a pending payload");
  JobSubmission job = std::move(jit->second);
  pending_jobs_.erase(jit);
  trace_event(e, job.deadline.value_or(0.0));
  schedule_job(job, e.time, e.seq);
}

void SchedulerService::schedule_job(const JobSubmission& job, double t,
                                    std::uint64_t seq) {
  RESCHED_CHECK(live_jobs_.find(job.job_id) == live_jobs_.end(),
                "job id already live in the engine");
  OBS_PHASE("online.schedule_job");
  if (config_.compact_calendar) {
    OBS_COUNT("online.compactions", 1);
    profile_.compact(t - config_.history_window);
  }
  int q_hist =
      resv::historical_average_available(profile_, t, config_.history_window);

  if (!job.deadline) {
    auto res =
        core::schedule_ressched(job.dag, profile_, t, q_hist, config_.ressched);
    commit_schedule(job, t, seq, res.schedule, Decision::kAccepted, kNaN);
    return;
  }

  // Batched admission pre-filter: one earliest-fit query per task (through
  // fit_many inside earliest_finish_floor) lower-bounds every task's finish
  // on the live calendar. A requested deadline below the floor is provably
  // unmeetable, so the full backward pass is skipped and the submission
  // goes straight to rejection or counter-offer — exactly where the failed
  // pass would have sent it.
  core::DeadlineResult dl;
  if (*job.deadline >= core::earliest_finish_floor(job.dag, profile_, t))
    dl = core::schedule_deadline(job.dag, profile_, t, q_hist, *job.deadline,
                                 config_.deadline);
  if (dl.feasible) {
    commit_schedule(job, t, seq, dl.schedule, Decision::kAccepted, kNaN);
    return;
  }
  if (config_.admission == AdmissionPolicy::kRejectInfeasible) {
    reject(job, t, seq, kNaN);
    return;
  }
  // Counter-offer: binary-search the earliest feasible deadline on the live
  // calendar (§5.3's tightest-deadline machinery) and tentatively commit
  // the schedule achieving it; the submitter's stretch rule then accepts or
  // rolls back.
  auto tight = core::tightest_deadline(job.dag, profile_, t, q_hist,
                                       config_.deadline, config_.tightest);
  RESCHED_ASSERT(tight.at_deadline.feasible,
                 "tightest-deadline search must end feasible");
  commit_schedule(job, t, seq, tight.at_deadline.schedule,
                  Decision::kCounterOffered, tight.deadline);
}

void SchedulerService::commit_schedule(const JobSubmission& job, double t,
                                       std::uint64_t seq,
                                       const core::AppSchedule& schedule,
                                       Decision decision,
                                       double counter_offer) {
  resv::ReservationList rs;
  rs.reserve(schedule.tasks.size());
  for (const core::TaskReservation& task : schedule.tasks)
    rs.push_back(task.as_reservation());

  resv::AvailabilityProfile::CommitToken token = profile_.commit(rs);
  if (decision == Decision::kCounterOffered &&
      std::isfinite(config_.counter_offer_limit) &&
      counter_offer - t > config_.counter_offer_limit * (*job.deadline - t)) {
    profile_.rollback(token);
    reject(job, t, seq, counter_offer);
    return;
  }
  committed_.insert(committed_.end(), rs.begin(), rs.end());

  double start = kInf, finish = -kInf;
  for (const core::TaskReservation& task : schedule.tasks) {
    start = std::min(start, task.start);
    finish = std::max(finish, task.finish);
  }
  live_jobs_[job.job_id] = LiveJob{static_cast<int>(schedule.tasks.size()),
                                   job.submit, start, finish,
                                   schedule.cpu_hours()};

  JobOutcome outcome;
  outcome.job_id = job.job_id;
  outcome.decision = decision;
  outcome.submit = job.submit;
  outcome.requested_deadline = job.deadline.value_or(kNaN);
  outcome.counter_offer = counter_offer;
  outcome.start = start;
  outcome.finish = finish;
  outcome.cpu_hours = schedule.cpu_hours();
  outcome.schedule = schedule;
  outcomes_.push_back(std::move(outcome));

  if (decision == Decision::kCounterOffered)
    OBS_COUNT("online.counter_offered", 1);
  else
    OBS_COUNT("online.accepted", 1);
  metrics_.record_decision(decision);
  trace_decision(seq, t, decision, job.job_id,
                 decision == Decision::kCounterOffered ? counter_offer
                                                       : finish);

  for (int i = 0; i < static_cast<int>(schedule.tasks.size()); ++i) {
    const core::TaskReservation& task = schedule.tasks[i];
    queue_.push({task.start, EventType::kReservationStart, job.job_id, i,
                 task.procs, 0});
    queue_.push({task.finish, EventType::kTaskCompletion, job.job_id, i,
                 task.procs, 0});
  }
}

void SchedulerService::reject(const JobSubmission& job, double t,
                              std::uint64_t seq, double counter_offer) {
  JobOutcome outcome;
  outcome.job_id = job.job_id;
  outcome.decision = Decision::kRejected;
  outcome.submit = job.submit;
  outcome.requested_deadline = job.deadline.value_or(kNaN);
  outcome.counter_offer = counter_offer;
  outcome.start = kNaN;
  outcome.finish = kNaN;
  outcomes_.push_back(std::move(outcome));
  OBS_COUNT("online.rejected", 1);
  metrics_.record_decision(Decision::kRejected);
  trace_decision(seq, t, Decision::kRejected, job.job_id,
                 job.deadline.value_or(kNaN));
}

void SchedulerService::change_usage(double t, int delta) {
  used_procs_ += delta;
  RESCHED_ASSERT(used_procs_ >= 0, "busy processor count went negative");
  metrics_.record_usage(t, used_procs_);
}

void SchedulerService::trace_event(const Event& e, double value) {
  if (!trace_) return;
  trace_->write({e.seq, e.time, to_string(e.type), e.job, e.task, e.procs,
                 value});
}

void SchedulerService::trace_decision(std::uint64_t seq, double t,
                                      Decision decision, int job,
                                      double value) {
  if (!trace_) return;
  trace_->write({seq, t, to_string(decision), job, -1, 0, value});
}

}  // namespace resched::online
