// Online scheduler service: streaming submissions over an incremental
// calendar, with admission control for deadline jobs.
//
// The offline evaluator (src/sim/) fixes a reservation calendar up front
// and schedules one DAG against it. This service is the operating mode of a
// real reservation-backed scheduler: DAG applications and external advance
// reservations arrive as a time-ordered event stream, and per arrival the
// engine runs one of the paper's algorithms (§4 RESSCHED for best-effort
// jobs, §5 RESSCHEDdl for deadline jobs) against the *current* calendar
// state, then commits the resulting per-task allocations as new
// reservations via the incremental AvailabilityProfile mutation API — no
// calendar rebuild, ever.
//
// Admission control (deadline jobs): when RESSCHEDdl cannot meet the
// requested deadline, the engine computes the earliest feasible deadline
// (the §5.3 tightest-deadline binary search on the live calendar) and, per
// policy, either rejects the job or counter-offers that deadline. A
// counter-offered schedule is committed tentatively; if the offer exceeds
// the submitter's stretch limit the commit is rolled back through the
// profile's rollback token, leaving the calendar untouched.
//
// Fault tolerance (DESIGN.md §8): the engine keeps full per-task placement
// state (reservation, version, pending/running/done) so the src/ft/ repair
// engine can invalidate and re-place individual allocations after a
// disruption. Every task / external-reservation event carries the placement
// version it was pushed for; an event whose version no longer matches the
// live placement is *stale* (the placement was repaired or the job
// abandoned) and is skipped. Disruptions are ordinary queue events
// (EventType::kDisruption) dispatched to a registered handler — the service
// itself contains no repair policy. With no handler registered the stale
// paths are unreachable and the engine behaves exactly as before.
//
// Determinism: all state changes flow through the event queue (stable FIFO
// tie-breaking), the algorithms are deterministic, all per-job state lives
// in ordered maps, and nothing depends on wall-clock or thread identity —
// replaying the same stream twice yields byte-identical traces and metrics.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/core/resscheddl.hpp"
#include "src/core/ressched.hpp"
#include "src/core/tightest_deadline.hpp"
#include "src/dag/dag.hpp"
#include "src/online/event_queue.hpp"
#include "src/online/online_metrics.hpp"
#include "src/online/trace.hpp"
#include "src/resv/profile.hpp"

namespace resched::ft {
struct ServiceAccess;
}  // namespace resched::ft

namespace resched::online {

enum class AdmissionPolicy {
  kRejectInfeasible,  ///< deadline misses are rejected outright
  kCounterOffer,      ///< offer the earliest feasible deadline instead
};

struct ServiceConfig {
  int capacity = 64;  ///< platform processors
  /// Window for the historical average availability q (paper §4.2).
  double history_window = 7 * 86400.0;
  core::ResschedParams ressched;  ///< algorithm for best-effort jobs
  core::DeadlineParams deadline;  ///< algorithm for deadline jobs
  AdmissionPolicy admission = AdmissionPolicy::kCounterOffer;
  /// A counter-offer is accepted when offered − now <= limit * (requested −
  /// now); infinity (the default) accepts every offer.
  double counter_offer_limit = std::numeric_limits<double>::infinity();
  core::TightestDeadlineOptions tightest;  ///< counter-offer search knobs
  /// Drop calendar breakpoints older than now − history_window as the
  /// engine advances, bounding memory for long-running streams.
  bool compact_calendar = true;
  /// Audit every admission rollback: capture the calendar's canonical steps
  /// before a tentative commit and assert they are restored after the
  /// rollback. O(R) per audited admission — a test / debugging knob.
  bool audit_rollback = false;
};

/// One application arriving in the stream. Aggregate-initialize (Dag has no
/// default constructor): {id, submit, std::move(dag), deadline}.
struct JobSubmission {
  int job_id;
  double submit;
  dag::Dag dag;
  /// Absolute completion requirement; nullopt = best-effort.
  std::optional<double> deadline;
};

/// The engine's verdict and schedule for one submission.
struct JobOutcome {
  int job_id = -1;
  Decision decision = Decision::kRejected;
  double submit = 0.0;
  /// Requested deadline (NaN for best-effort jobs).
  double requested_deadline = 0.0;
  /// Earliest feasible deadline found when the request was infeasible
  /// (NaN when not computed).
  double counter_offer = 0.0;
  double start = 0.0;   ///< first task start (NaN when rejected)
  double finish = 0.0;  ///< last task finish (NaN when rejected)
  double cpu_hours = 0.0;
  /// Admission-time schedule (empty when rejected). Disruption repairs may
  /// move individual placements afterwards; the live placements are
  /// tracked by the engine, not re-written here.
  core::AppSchedule schedule;
};

class SchedulerService {
 public:
  /// Engine over an internally owned calendar of config.capacity procs —
  /// the classic single-engine mode.
  explicit SchedulerService(ServiceConfig config);

  /// Engine bound to an externally owned calendar (the engine-per-shard
  /// mode, DESIGN.md §9): the service mutates `calendar` in place and never
  /// owns it, so a shard can hand the same calendar to its repair engine
  /// and its checkpointer. `calendar` must outlive the service and its
  /// capacity must equal config.capacity.
  SchedulerService(ServiceConfig config, resv::AvailabilityProfile& calendar);

  // The engine hands out its address (repair handlers, ServiceAccess) and
  // may point into its own calendar member; it lives where it was built.
  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Enqueues a DAG submission. Submissions may be enqueued in any order;
  /// processing is strictly time-ordered (ties FIFO by enqueue order). A
  /// submission in the engine's past (submit < now()) is a precondition
  /// violation.
  void submit(JobSubmission job);

  /// Enqueues an external advance reservation that becomes visible to the
  /// scheduler at `arrival` and is committed to the calendar then.
  void submit_reservation(double arrival, const resv::Reservation& r);

  /// Cancels a live job at time t >= now() (DESIGN.md §10). The engine
  /// first drains every event with time <= t, then releases the job's
  /// placements: pending placements are released in full, running tasks are
  /// killed leaving their elapsed [start, t) stub in the calendar (that
  /// work genuinely happened), and completed tasks keep their reservations.
  /// Queued events for the job go stale via version bumps (cancellation
  /// switches the engine into fault-tolerant mode, like a repair), and the
  /// job id is retired. Emits one "cancel" trace record carrying the number
  /// of released placements. Returns false — with no state change — when
  /// the job is not live (never admitted, already finished, or cancelled).
  bool cancel_job(double t, int job_id);

  /// One externally driven mutation, announced to the WAL hook *after*
  /// argument validation and *before* any state change — the write-ahead
  /// point (DESIGN.md §10). Pointees are borrowed for the hook call only.
  struct WalOp {
    enum class Kind { kSubmit, kReservation, kCancel };
    Kind kind = Kind::kSubmit;
    double time = 0.0;                        ///< effective apply time
    const JobSubmission* job = nullptr;       ///< kSubmit
    const resv::Reservation* resv = nullptr;  ///< kReservation
    int job_id = -1;                          ///< kCancel
  };
  using WalHook = std::function<void(const WalOp&)>;

  /// Registers the durability hook invoked on every submit /
  /// submit_reservation / cancel_job (empty hook detaches). The hook may
  /// throw to veto the mutation (e.g. a failed WAL append): the engine
  /// state is untouched and the exception propagates to the caller.
  void set_wal_hook(WalHook hook) { wal_hook_ = std::move(hook); }

  /// Processes every event with time <= t, advancing now() to max(t, now).
  void run_until(double t);

  /// Drains the event queue completely.
  void run_all();

  /// Time of the earliest pending event; +infinity when the queue is
  /// empty. The conservative parallel replay (src/pdes/) derives its
  /// lower-bound-on-timestamp barrier from this.
  double next_event_time() const {
    return queue_.empty() ? std::numeric_limits<double>::infinity()
                          : queue_.peek().time;
  }

  /// Arms a precomputed admission-floor hint for the next processed job
  /// submission (reschedd batched admission, DESIGN.md §10). `floor` must
  /// be core::evaluate_finish_floor for that job's DAG at its effective
  /// submission time, computed against a calendar snapshot taken at
  /// profile epoch `epoch`. The engine consumes the hint instead of
  /// re-freezing the calendar when the hinted floor is provably still a
  /// lower bound on the live floor — no availability-increasing mutation
  /// (release / rollback / repair) since `epoch`; reservations *added*
  /// since only push the true floor up, and the pre-filter only ever
  /// skips full passes that would have come back infeasible, so a stale
  /// valid hint cannot change any outcome. Otherwise the hint is silently
  /// dropped and the engine recomputes. One-shot: cleared by the next
  /// admission whether or not it was usable.
  void hint_admission_floor(double floor, std::uint64_t epoch) {
    floor_hint_ = FloorHint{floor, epoch};
  }

  /// Disarms a pending hint. Batched callers invoke this after each
  /// request so a hint armed for an admission that failed before the
  /// engine consumed it cannot leak onto the next job.
  void clear_admission_floor_hint() { floor_hint_.reset(); }

  double now() const { return now_; }
  const resv::AvailabilityProfile& profile() const { return *profile_; }
  const OnlineMetrics& metrics() const { return metrics_; }
  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }
  /// Pending events (load signal for shard routing).
  std::size_t queue_size() const { return queue_.size(); }
  /// Events processed since construction — the sharded throughput bench's
  /// unit of work. Process-local: not part of the checkpoint format.
  std::uint64_t events_processed() const { return events_processed_; }
  /// Processors busy right now (running tasks + started externals).
  int used_procs() const { return used_procs_; }
  /// All reservations currently in the calendar, in commit order — an
  /// offline rebuild of the calendar from this list matches profile()
  /// exactly. Rolled-back admissions never enter the list; disruption
  /// repairs erase the reservations they release.
  const resv::ReservationList& committed_reservations() const {
    return committed_;
  }

  /// Attaches a trace writer (borrowed; nullptr detaches). Every processed
  /// event and admission decision is recorded.
  void set_trace(TraceWriter* trace) { trace_ = trace; }

  // --- Fault-tolerance surface (src/ft/) ----------------------------------

  /// Invoked when a kDisruption event is processed: (time, event seq,
  /// disruption id). Registering a handler switches the engine into
  /// fault-tolerant mode (stale events tolerated, job-id reuse rejected);
  /// with no handler the engine behaves exactly as without this feature.
  using DisruptionHandler =
      std::function<void(double t, std::uint64_t seq, int id)>;
  void set_disruption_handler(DisruptionHandler handler);

  /// Invoked after an external advance reservation is committed on arrival.
  /// A newly visible ("blind", paper §6) reservation can collide with task
  /// placements committed before it was known — the handler is expected to
  /// resolve any resulting over-subscription. Registering one switches the
  /// engine into fault-tolerant mode, like set_disruption_handler.
  using ConflictHandler = std::function<void(double t, std::uint64_t seq)>;
  void set_conflict_handler(ConflictHandler handler);

  /// Enqueues a disruption carrying opaque id `id` at time t >= now().
  /// Returns the event's sequence number.
  std::uint64_t submit_disruption(double t, int id);

  /// Stale (version-mismatched) events skipped so far — non-zero only when
  /// disruption repairs rewrote placements.
  std::uint64_t stale_events() const { return stale_events_; }

  /// Live placement state of one task (exposed for the repair engine and
  /// for invariant checks in tests).
  struct LiveTask {
    core::TaskReservation r;  ///< current committed placement
    int version = 0;          ///< bumped on every invalidation / re-place
    enum class State { kPending, kRunning, kDone } state = State::kPending;
    int attempts = 1;  ///< placement attempts (1 = admission placement)
    int failures = 0;  ///< times killed while running (retry cap / backoff)
    /// r is live in the calendar. False only transiently, between a repair
    /// eviction and the re-placement (or job abandonment) ending the same
    /// episode.
    bool placed = true;
  };
  struct LiveJob {
    dag::Dag dag;
    std::optional<double> deadline;
    double submit = 0.0;
    int remaining_tasks = 0;
    std::vector<LiveTask> tasks;  ///< indexed by task id
  };
  /// One committed external advance reservation, keyed by a dense id.
  struct ExternalResv {
    resv::Reservation r;
    int version = 0;
    bool started = false;
  };

  const std::map<int, LiveJob>& live_jobs() const { return live_jobs_; }
  const std::map<int, ExternalResv>& external_reservations() const {
    return externals_;
  }

 private:
  friend struct ::resched::ft::ServiceAccess;

  void process(const Event& e);
  void handle_submission(const Event& e);
  void handle_reservation_start(const Event& e);
  void handle_reservation_end(const Event& e);
  void handle_task_completion(const Event& e);
  void schedule_job(const JobSubmission& job, double t, std::uint64_t seq);
  /// Commits `schedule` through the profile's commit token, records the
  /// outcome, and pushes start/completion events. A counter-offer exceeding
  /// the submitter's limit is rolled back and rejected instead.
  void commit_schedule(const JobSubmission& job, double t, std::uint64_t seq,
                       const core::AppSchedule& schedule, Decision decision,
                       double counter_offer);
  void reject(const JobSubmission& job, double t, std::uint64_t seq,
              double counter_offer);
  void change_usage(double t, int delta);
  /// Removes the latest committed_ entry matching r exactly (cancellation
  /// releases placements the admission committed).
  void erase_committed(const resv::Reservation& r);
  /// Records a version-mismatched event: an invariant violation unless a
  /// disruption handler is active (only repairs create stale events).
  void note_stale(const Event& e);
  LiveTask* find_live_task(int job, int task);
  void trace_event(const Event& e, double value = 0.0);
  void trace_decision(std::uint64_t seq, double t, Decision decision, int job,
                      double value);

  ServiceConfig config_;
  /// Engaged only in owning mode; profile_ then points at it. In bound
  /// mode (the shard constructor) it stays empty and profile_ targets the
  /// caller's calendar.
  std::optional<resv::AvailabilityProfile> owned_profile_;
  resv::AvailabilityProfile* profile_;
  EventQueue queue_;
  OnlineMetrics metrics_;
  std::vector<JobOutcome> outcomes_;
  resv::ReservationList committed_;
  std::map<std::uint64_t, JobSubmission> pending_jobs_;
  std::map<std::uint64_t, resv::Reservation> pending_resv_;
  std::map<int, LiveJob> live_jobs_;
  std::map<int, ExternalResv> externals_;
  /// Job ids that completed or were abandoned — stale events referencing
  /// them are tolerated (in ft mode) instead of asserting.
  std::set<int> retired_jobs_;
  DisruptionHandler disruption_handler_;
  ConflictHandler conflict_handler_;
  WalHook wal_hook_;
  TraceWriter* trace_ = nullptr;
  double now_;
  int used_procs_ = 0;
  int next_external_id_ = 0;
  std::uint64_t stale_events_ = 0;
  std::uint64_t events_processed_ = 0;
  bool ft_active_ = false;
  /// Admission pre-filter scratch: the calendar frozen for floor probes
  /// (rebuilt only when the calendar mutated since the previous deadline
  /// admission) and the per-task query buffer, both reused across jobs.
  resv::CalendarSnapshot floor_snapshot_;
  std::vector<resv::FitQuery> floor_queries_;
  /// Batched-admission hint (hint_admission_floor): floor precomputed
  /// against the snapshot frozen at profile epoch `epoch`.
  struct FloorHint {
    double floor;
    std::uint64_t epoch;
  };
  std::optional<FloorHint> floor_hint_;
  /// Profile epoch right after the engine's most recent
  /// availability-increasing mutation (release / rollback). Floors
  /// precomputed against snapshots at least this new are still valid
  /// lower bounds; older ones may over-reject and are discarded.
  std::uint64_t release_epoch_ = 0;
};

}  // namespace resched::online
