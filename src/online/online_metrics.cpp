#include "src/online/online_metrics.hpp"

#include <limits>
#include <numeric>

#include "src/util/error.hpp"

namespace resched::online {

namespace {

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

}  // namespace

const char* to_string(Decision decision) {
  switch (decision) {
    case Decision::kAccepted: return "accept";
    case Decision::kCounterOffered: return "counter_offer";
    case Decision::kRejected: return "reject";
  }
  return "?";
}

OnlineMetrics::OnlineMetrics(int capacity) : capacity_(capacity) {
  RESCHED_CHECK(capacity >= 1, "metrics need a positive platform capacity");
}

void OnlineMetrics::record_decision(Decision decision) {
  ++submitted_;
  switch (decision) {
    case Decision::kAccepted: ++accepted_; break;
    case Decision::kCounterOffered: ++counter_offered_; break;
    case Decision::kRejected: ++rejected_; break;
  }
}

void OnlineMetrics::record_completion(double submit, double first_start,
                                      double finish, double cpu_hours) {
  RESCHED_CHECK(first_start >= submit, "job cannot start before submission");
  RESCHED_CHECK(finish > first_start, "job must finish after it starts");
  turnaround_.push_back(finish - submit);
  wait_.push_back(first_start - submit);
  stretch_.push_back((finish - submit) / (finish - first_start));
  total_cpu_hours_ += cpu_hours;
}

void OnlineMetrics::record_usage(double time, int used) {
  RESCHED_CHECK(used >= 0, "busy processor count cannot be negative");
  RESCHED_CHECK(timeline_.empty() || time >= timeline_.back().time,
                "usage must be recorded in non-decreasing time order");
  if (!timeline_.empty() && timeline_.back().time == time) {
    timeline_.back().used = used;  // several events at one instant: last wins
    return;
  }
  timeline_.push_back({time, used});
}

double OnlineMetrics::acceptance_rate() const {
  if (submitted_ == 0) return 1.0;
  return static_cast<double>(accepted_ + counter_offered_) /
         static_cast<double>(submitted_);
}

double OnlineMetrics::mean_turnaround() const { return mean_of(turnaround_); }
double OnlineMetrics::mean_wait() const { return mean_of(wait_); }
double OnlineMetrics::mean_stretch() const { return mean_of(stretch_); }

double OnlineMetrics::utilization(double from, double to) const {
  RESCHED_CHECK(from < to, "utilization requires from < to");
  double busy_integral = 0.0;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    double seg_start = std::max(timeline_[i].time, from);
    double seg_end = i + 1 < timeline_.size()
                         ? std::min(timeline_[i + 1].time, to)
                         : to;
    if (seg_end <= seg_start) continue;
    if (seg_start >= to) break;
    busy_integral += static_cast<double>(timeline_[i].used) *
                     (seg_end - seg_start);
  }
  return busy_integral / (static_cast<double>(capacity_) * (to - from));
}

sim::TextTable OnlineMetrics::summary_table() const {
  sim::TextTable table({"metric", "value"});
  auto row = [&table](const char* name, const std::string& value) {
    table.add_row({name, value});
  };
  row("submitted", std::to_string(submitted_));
  row("accepted", std::to_string(accepted_));
  row("counter-offered", std::to_string(counter_offered_));
  row("rejected", std::to_string(rejected_));
  row("acceptance rate", sim::fmt(acceptance_rate(), 3));
  row("completed", std::to_string(completed()));
  row("mean turn-around [h]", sim::fmt(mean_turnaround() / 3600.0));
  row("mean wait [h]", sim::fmt(mean_wait() / 3600.0));
  row("mean stretch", sim::fmt(mean_stretch()));
  row("total CPU-hours", sim::fmt(total_cpu_hours(), 1));
  return table;
}

}  // namespace resched::online
