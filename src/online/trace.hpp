// JSONL event-trace writer / reader for the online engine.
//
// Every processed engine event (and every admission decision) is emitted as
// one JSON object per line, with a fixed key order so that traces are
// byte-stable across runs and platforms:
//
//   {"seq":12,"t":3600,"type":"submit","job":4,"task":-1,"procs":0,"value":0}
//
// Keys: seq (event sequence number; admission decisions reuse the sequence
// number of the submission that triggered them), t (engine time, seconds),
// type (event or decision name), job / task / procs (ids, -1 / 0 when not
// applicable), value (type-dependent: schedule finish time for accept,
// offered deadline for counter_offer, requested deadline for reject).
//
// Sharded mode (DESIGN.md §9): engine sequence numbers are per-engine, so a
// multi-shard run namespaces its records with a leading shard id —
//
//   {"shard":2,"seq":12,"t":3600,"type":"submit",...}
//
// — making (shard, seq) a unique event id across the whole service. The tag
// is emitted only for records carrying a shard id (shard >= 0); untagged
// records render exactly as before, so single-engine traces (and their
// golden files) are byte-for-byte unchanged.
//
// Doubles are formatted with %.17g, which strtod parses back to the exact
// same bits, so write -> read -> write round-trips byte-identically — the
// property the golden-file test in tests/online_trace_test.cpp enforces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace resched::online {

/// One trace line. `type` holds an event name (to_string(EventType)) or a
/// decision name (to_string(Decision)). `shard` is the owning shard in a
/// sharded run; -1 (the default) means untagged — the single-engine schema.
struct TraceRecord {
  std::uint64_t seq = 0;
  double time = 0.0;
  std::string type;
  int job = -1;
  int task = -1;
  int procs = 0;
  double value = 0.0;
  int shard = -1;

  bool operator==(const TraceRecord&) const = default;
};

/// Formats a double such that strtod(result) reproduces the value exactly.
std::string format_double(double v);

/// Streams records as JSONL. The stream is borrowed, not owned. A writer
/// constructed with a shard id stamps it into every untagged record it
/// writes — the per-shard writers of a sharded service tag mechanically
/// while single-engine callers stay schema-compatible.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out, int shard = -1)
      : out_(&out), shard_(shard) {}
  void write(const TraceRecord& record);

 private:
  std::ostream* out_;
  int shard_ = -1;
};

/// Serializes one record to its JSONL line (no trailing newline).
std::string to_json_line(const TraceRecord& record);

/// Parses one JSONL line; throws resched::Error on schema violations.
TraceRecord parse_trace_line(const std::string& line);

/// Reads a whole trace (empty lines are skipped).
std::vector<TraceRecord> read_trace(std::istream& in);

/// Merges per-shard traces into one stream under the deterministic total
/// order (time, shard, seq) — the order every multi-shard replay converges
/// to regardless of thread count, so merged traces diff cleanly. Each input
/// is one shard's trace, already time-ordered (engine traces are); records
/// still untagged inherit their input's index as shard id. The merge is
/// stable: a decision record reuses its submission's (time, seq), and the
/// pair keeps the shard's emission order (submit before decision) — which
/// is why an input must hold a whole shard, never a slice of one.
std::vector<TraceRecord> merge_traces(std::vector<std::vector<TraceRecord>> shards);

}  // namespace resched::online
