// JSONL event-trace writer / reader for the online engine.
//
// Every processed engine event (and every admission decision) is emitted as
// one JSON object per line, with a fixed key order so that traces are
// byte-stable across runs and platforms:
//
//   {"seq":12,"t":3600,"type":"submit","job":4,"task":-1,"procs":0,"value":0}
//
// Keys: seq (event sequence number; admission decisions reuse the sequence
// number of the submission that triggered them), t (engine time, seconds),
// type (event or decision name), job / task / procs (ids, -1 / 0 when not
// applicable), value (type-dependent: schedule finish time for accept,
// offered deadline for counter_offer, requested deadline for reject).
//
// Doubles are formatted with %.17g, which strtod parses back to the exact
// same bits, so write -> read -> write round-trips byte-identically — the
// property the golden-file test in tests/online_trace_test.cpp enforces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace resched::online {

/// One trace line. `type` holds an event name (to_string(EventType)) or a
/// decision name (to_string(Decision)).
struct TraceRecord {
  std::uint64_t seq = 0;
  double time = 0.0;
  std::string type;
  int job = -1;
  int task = -1;
  int procs = 0;
  double value = 0.0;

  bool operator==(const TraceRecord&) const = default;
};

/// Formats a double such that strtod(result) reproduces the value exactly.
std::string format_double(double v);

/// Streams records as JSONL. The stream is borrowed, not owned.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(&out) {}
  void write(const TraceRecord& record);

 private:
  std::ostream* out_;
};

/// Serializes one record to its JSONL line (no trailing newline).
std::string to_json_line(const TraceRecord& record);

/// Parses one JSONL line; throws resched::Error on schema violations.
TraceRecord parse_trace_line(const std::string& line);

/// Reads a whole trace (empty lines are skipped).
std::vector<TraceRecord> read_trace(std::istream& in);

}  // namespace resched::online
