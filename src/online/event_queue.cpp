#include "src/online/event_queue.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace resched::online {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kSubmission: return "submit";
    case EventType::kReservationStart: return "resv_start";
    case EventType::kReservationEnd: return "resv_end";
    case EventType::kTaskCompletion: return "task_done";
    case EventType::kDisruption: return "disruption";
  }
  return "?";
}

std::uint64_t EventQueue::push(Event e) {
  RESCHED_CHECK(e.time == e.time, "event time must not be NaN");
  e.seq = next_seq_++;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return e.seq;
}

const Event& EventQueue::peek() const {
  RESCHED_CHECK(!heap_.empty(), "peek on an empty event queue");
  return heap_.front();
}

Event EventQueue::pop() {
  RESCHED_CHECK(!heap_.empty(), "pop on an empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

std::vector<Event> EventQueue::snapshot() const {
  std::vector<Event> out = heap_;
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  return out;
}

void EventQueue::restore(std::vector<Event> events, std::uint64_t next) {
  for (const Event& e : events) {
    RESCHED_CHECK(e.time == e.time, "restored event time must not be NaN");
    RESCHED_CHECK(e.seq < next, "restored seq must precede next_seq");
  }
  heap_ = std::move(events);
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  next_seq_ = next;
}

}  // namespace resched::online
