#include "src/online/event_queue.hpp"

#include "src/util/error.hpp"

namespace resched::online {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kSubmission: return "submit";
    case EventType::kReservationStart: return "resv_start";
    case EventType::kReservationEnd: return "resv_end";
    case EventType::kTaskCompletion: return "task_done";
  }
  return "?";
}

std::uint64_t EventQueue::push(Event e) {
  RESCHED_CHECK(e.time == e.time, "event time must not be NaN");
  e.seq = next_seq_++;
  heap_.push(e);
  return e.seq;
}

const Event& EventQueue::peek() const {
  RESCHED_CHECK(!heap_.empty(), "peek on an empty event queue");
  return heap_.top();
}

Event EventQueue::pop() {
  RESCHED_CHECK(!heap_.empty(), "pop on an empty event queue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace resched::online
