// Workload replay: turn a batch log into a stream of DAG submissions.
//
// SWF logs (src/workload/swf.*) and the synthetic generators
// (src/workload/synth.*) record jobs as flat <submit, runtime, procs>
// tuples. The online engine schedules mixed-parallel *applications*, so
// each log job is replayed as a randomly generated DAG (paper §3.1
// semantics) arriving at the job's submit time. A configurable fraction of
// jobs carries a deadline derived from the DAG's own critical path, which
// exercises the admission-control paths. Generation is deterministic per
// job index, so a replay is reproducible independent of platform or thread
// count.
#pragma once

#include <vector>

#include "src/dag/daggen.hpp"
#include "src/online/service.hpp"
#include "src/workload/log.hpp"

namespace resched::online {

struct ReplaySpec {
  /// Shape of each submitted application (Table 1 parameters).
  dag::DagSpec app;
  /// Fraction of jobs submitted with a deadline (drawn per job).
  double deadline_fraction = 0.0;
  /// Deadline = submit + slack * (serial critical path of the generated
  /// DAG). Values near 1 give tight deadlines; large values loose ones.
  double deadline_slack = 3.0;
  /// Truncate the log to its first `max_jobs` jobs (0 = replay everything).
  int max_jobs = 0;
  std::uint64_t seed = 42;
};

/// Materializes one log job as a submission: job `index` becomes a DAG
/// generated from derive_seed(seed, {tag, index}) submitted at job.submit,
/// with job_id = index. Deterministic per (spec.seed, index) — streaming
/// replays (src/pdes/) call this lazily and get the exact stream
/// submissions_from_log would have built up front.
JobSubmission submission_for_job(const workload::Job& job, int index,
                                 const ReplaySpec& spec);

/// Builds the submission stream for `log`: job i becomes a DAG generated
/// from derive_seed(seed, {i}) submitted at log.jobs[i].submit, with
/// job_id i.
std::vector<JobSubmission> submissions_from_log(const workload::Log& log,
                                                const ReplaySpec& spec);

}  // namespace resched::online
