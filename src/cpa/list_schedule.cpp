#include "src/cpa/list_schedule.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace resched::cpa {

std::vector<Placement> list_schedule(const dag::Dag& dag,
                                     std::span<const int> alloc, int q,
                                     double t0, std::span<const int> order) {
  RESCHED_CHECK(static_cast<int>(alloc.size()) == dag.size(),
                "allocation vector size must match DAG size");
  RESCHED_CHECK(static_cast<int>(order.size()) == dag.size(),
                "priority order must cover every task");
  RESCHED_CHECK(q >= 1, "need at least one processor");

  std::vector<double> proc_free(static_cast<std::size_t>(q), t0);
  std::vector<Placement> placed(alloc.size(), Placement{-1.0, -1.0});

  for (int task : order) {
    auto ti = static_cast<std::size_t>(task);
    int k = alloc[ti];
    RESCHED_CHECK(k >= 1 && k <= q, "allocation outside [1, q]");
    double ready = t0;
    for (int pred : dag.predecessors(task)) {
      const Placement& pp = placed[static_cast<std::size_t>(pred)];
      RESCHED_CHECK(pp.finish >= 0.0,
                    "priority order must schedule predecessors first");
      ready = std::max(ready, pp.finish);
    }
    // Claim the k processors that free up earliest: sorting proc_free makes
    // the k-th smallest the gating availability.
    std::sort(proc_free.begin(), proc_free.end());
    double start = std::max(ready, proc_free[static_cast<std::size_t>(k - 1)]);
    double finish = start + dag::exec_time(dag.cost(task), k);
    for (int j = 0; j < k; ++j) proc_free[static_cast<std::size_t>(j)] = finish;
    placed[ti] = Placement{start, finish};
  }
  return placed;
}

double makespan(std::span<const Placement> placements, double t0) {
  double end = t0;
  for (const Placement& p : placements) end = std::max(end, p.finish);
  return end - t0;
}

}  // namespace resched::cpa
