// CPA — Critical Path and Area-based scheduling (Radulescu & van Gemund
// [37]), with the improved stopping criterion of N'Takpé et al. [34]
// (paper §2.1, §4.2).
//
// Phase 1 (allocation) starts every task at one processor and repeatedly
// grants one more processor to the critical-path task whose execution time
// shrinks the most *relatively*, until the critical path length T_CP no
// longer exceeds the average area T_A:
//
//     T_A = (1 / q) * sum_i alloc_i * exec_i(alloc_i).
//
// The original algorithm bounds every allocation only by q. Its known
// drawback — on large platforms allocations grow so large they smother task
// parallelism — is addressed by the improved variant, which additionally
// caps each task's allocation at ceil(q / W(t)), where W(t) is the number
// of tasks sharing t's precedence level: once the DAG can keep W(t) tasks
// concurrent, granting a single task more than its share of the q
// processors only inflates area. This realizes the "better limiting of task
// allocations" of [34] (and MCPA [7] for layered graphs); see DESIGN.md §2,
// substitution 4.
//
// Phase 2 (mapping) list-schedules tasks in decreasing bottom-level order on
// q reservation-free processors. When the reservation schedule is empty the
// paper's BL_CPA_BD_CPA algorithm reduces to exactly this schedule.
#pragma once

#include <span>
#include <vector>

#include "src/cpa/list_schedule.hpp"
#include "src/dag/dag.hpp"

namespace resched::cpa {

enum class Criterion {
  kOriginal,  ///< allocations bounded only by q ([37])
  kImproved,  ///< allocations also capped at ceil(q / level width) ([34])
};

struct Options {
  Criterion criterion = Criterion::kImproved;
};

/// Phase 1: per-task processor allocations, each in [1, q].
std::vector<int> allocations(const dag::Dag& dag, int q,
                             const Options& opts = {});

/// A complete CPA schedule on q dedicated processors.
struct CpaSchedule {
  std::vector<int> alloc;             ///< phase-1 allocations
  std::vector<Placement> placements;  ///< phase-2 start/finish per task
  double makespan = 0.0;
  /// Consumed processor-hours: sum over tasks of alloc * exec / 3600.
  double cpu_hours = 0.0;
};

/// Runs both phases starting at time t0.
CpaSchedule schedule(const dag::Dag& dag, int q, double t0,
                     const Options& opts = {});

/// CPA schedule of the sub-DAG induced by keep[], reported against original
/// task ids — the guideline-schedule primitive of the resource-conservative
/// deadline algorithms (paper §5.2.2).
struct SubdagGuideline {
  /// CPA start time of each kept task, relative to schedule start (tasks
  /// not kept hold -1).
  std::vector<double> start;
  /// Makespan of the sub-DAG's CPA schedule.
  double makespan = 0.0;
};
SubdagGuideline subdag_guideline(const dag::Dag& dag,
                                 const std::vector<bool>& keep, int q,
                                 const Options& opts = {});

}  // namespace resched::cpa
