#include "src/cpa/cpa.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace resched::cpa {

std::vector<int> allocations(const dag::Dag& dag, int q,
                             const Options& opts) {
  RESCHED_CHECK(q >= 1, "need at least one processor");
  const int n = dag.size();
  std::vector<int> alloc(static_cast<std::size_t>(n), 1);

  // Per-task allocation caps: the improved criterion reserves each task its
  // fair share of q among the tasks of its precedence level.
  std::vector<int> cap(static_cast<std::size_t>(n), q);
  if (opts.criterion == Criterion::kImproved) {
    std::vector<int> level_width(static_cast<std::size_t>(dag.num_levels()),
                                 0);
    for (int lvl : dag.levels()) ++level_width[static_cast<std::size_t>(lvl)];
    for (int v = 0; v < n; ++v) {
      int w = level_width[static_cast<std::size_t>(
          dag.levels()[static_cast<std::size_t>(v)])];
      cap[static_cast<std::size_t>(v)] = std::max(
          1, std::min(q, (q + w - 1) / w));
    }
  }

  // Average area, maintained incrementally as allocations grow.
  double area = 0.0;
  for (int v = 0; v < n; ++v) area += dag::work(dag.cost(v), 1);
  double t_a = area / static_cast<double>(q);

  // Each iteration adds one processor to one task, so the loop is bounded
  // by n * (q - 1) even if T_CP never dips below T_A. The exec/bottom/top
  // sweeps reuse scratch buffers across iterations — this loop was the
  // measured #1 hot spot of the online engine (it dominated
  // core.resscheddl.context) and previously recomputed bottom levels three
  // times per iteration through critical_path_tasks.
  // Only the chosen task's allocation changes per iteration, so the exec
  // vector is maintained incrementally: one exec_time call per grant
  // instead of a full O(n) recompute (same formula, same inputs — the
  // values are the ones exec_times_into would produce).
  std::vector<double> exec, bl, tl;
  dag::exec_times_into(dag, alloc, exec);
  while (true) {
    dag::bottom_levels_into(dag, exec, bl);
    double t_cp = *std::max_element(bl.begin(), bl.end());
    if (t_cp <= t_a) break;

    // Candidate: critical-path task with the largest relative execution-time
    // reduction from one extra processor; ties go to the longer bottom level
    // (the more schedule-critical task). Membership is inlined from
    // dag::critical_path_tasks — same tolerance arithmetic, same
    // topological visiting order (t_cp is the same max-element of the same
    // bottom levels it would recompute) — so the selection is unchanged.
    dag::top_levels_into(dag, exec, tl);
    double tol = 1e-9 * std::max(1.0, t_cp);
    int best = -1;
    double best_gain = 0.0;
    for (int v : dag.topological_order()) {
      auto vi = static_cast<std::size_t>(v);
      if (tl[vi] + bl[vi] < t_cp - tol) continue;  // off every critical path
      if (alloc[vi] >= cap[vi]) continue;
      double cur = exec[vi];  // == dag::exec_time(dag.cost(v), alloc[vi])
      double nxt = dag::exec_time(dag.cost(v), alloc[vi] + 1);
      double gain = cur <= 0.0 ? 0.0 : (cur - nxt) / cur;
      if (best < 0 || gain > best_gain ||
          (gain == best_gain && bl[vi] > bl[static_cast<std::size_t>(best)])) {
        best = v;
        best_gain = gain;
      }
    }
    if (best < 0 || best_gain <= 0.0) break;  // saturated: no useful growth

    auto bi = static_cast<std::size_t>(best);
    t_a += (dag::work(dag.cost(best), alloc[bi] + 1) -
            dag::work(dag.cost(best), alloc[bi])) /
           static_cast<double>(q);
    ++alloc[bi];
    exec[bi] = dag::exec_time(dag.cost(best), alloc[bi]);
  }
  return alloc;
}

CpaSchedule schedule(const dag::Dag& dag, int q, double t0,
                     const Options& opts) {
  CpaSchedule out;
  out.alloc = allocations(dag, q, opts);
  auto bl = dag::bottom_levels(dag, out.alloc);
  auto order = dag::order_by_decreasing(dag, bl);
  out.placements = list_schedule(dag, out.alloc, q, t0, order);
  out.makespan = makespan(out.placements, t0);
  for (int v = 0; v < dag.size(); ++v)
    out.cpu_hours += dag::work(dag.cost(v),
                               out.alloc[static_cast<std::size_t>(v)]) /
                     3600.0;
  return out;
}

SubdagGuideline subdag_guideline(const dag::Dag& dag,
                                 const std::vector<bool>& keep, int q,
                                 const Options& opts) {
  auto sub = dag::induced_subdag(dag, keep);
  CpaSchedule sched = schedule(sub.dag, q, 0.0, opts);
  SubdagGuideline out;
  out.start.assign(static_cast<std::size_t>(dag.size()), -1.0);
  out.makespan = sched.makespan;
  for (int new_id = 0; new_id < sub.dag.size(); ++new_id)
    out.start[static_cast<std::size_t>(sub.to_original[
        static_cast<std::size_t>(new_id)])] =
        sched.placements[static_cast<std::size_t>(new_id)].start;
  return out;
}

}  // namespace resched::cpa
