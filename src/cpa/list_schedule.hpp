// Bottom-level list scheduling of rigid (pre-allocated) tasks onto a
// reservation-free pool of q processors — CPA's mapping phase (paper §4.2,
// [37]).
//
// Tasks are placed in the given priority order; each task claims the
// alloc[i] processors that become free earliest and starts at the max of
// its data-ready time and those processors' availability.
#pragma once

#include <span>
#include <vector>

#include "src/dag/dag.hpp"

namespace resched::cpa {

/// One task's placement in a list schedule.
struct Placement {
  double start = 0.0;
  double finish = 0.0;
};

/// Schedules the whole DAG in `order` (a precedence-respecting priority
/// order, usually decreasing bottom level) onto q processors starting at
/// time t0. alloc[i] is task i's processor allocation, each in [1, q].
std::vector<Placement> list_schedule(const dag::Dag& dag,
                                     std::span<const int> alloc, int q,
                                     double t0, std::span<const int> order);

/// Makespan of a placement vector (max finish minus t0).
double makespan(std::span<const Placement> placements, double t0);

}  // namespace resched::cpa
