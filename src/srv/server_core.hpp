// reschedd's transport-free brain (DESIGN.md §10).
//
// ServerCore owns the scheduling engine — a single online::SchedulerService
// or, with shards > 1, a shard::ShardedService router — plus the client-id
// registry, the durability machinery, and the shutdown artifacts. The
// socket layer (src/srv/server.*) is a thin shell: it parses frames,
// serializes calls into apply() under one mutex, and ships the responses
// back; every scheduling decision and every byte of durable state lives
// here, which is what lets the WAL kill-and-resume test drive a bit-exact
// golden replay with no sockets at all.
//
// Durability protocol (write-ahead, group commit):
//
//   1. apply() stamps the request with its effective apply time
//      (t_eff = max(requested t, now) — the stream clock never goes
//      backwards) and, for counter-offer-accept, the accepted deadline,
//      then stages the resulting *effective* request JSON;
//   2. the engine validates the mutation and fires its WAL hook at the
//      write-ahead point — the staged record is appended to the log
//      (fsync policy-deferred) *before* any engine state changes; a
//      validation failure means nothing was logged;
//   3. the caller holds apply()'s returned LSN until WalWriter::sync_to
//      makes it durable, and only then releases the response — concurrent
//      connections share one fsync (group commit).
//
// Replaying the log through a fresh ServerCore with the same config
// re-applies the identical effective requests in the identical order, so
// the recovered calendar, registry, and JSONL trace are byte-identical to
// the pre-crash run. Snapshots (single-engine mode) bound replay time: the
// engine's RSFT checkpoint (src/ft/checkpoint.*) is wrapped in an envelope
// carrying the registry, tallies, accumulated trace text, and the next
// record id; records the snapshot already covers are skipped by rid on
// recovery, so a crash between snapshot rename and WAL truncation never
// double-applies.
//
// Admission: the daemon runs the engine with
// AdmissionPolicy::kRejectInfeasible and performs counter-offer
// negotiation itself, client-driven: a rejected deadline job gets the §5.3
// tightest feasible deadline quoted in the response ("offered"), the offer
// and the DAG stay in the registry, and "counter-offer-accept" re-submits
// under the quoted deadline (sharded mode skips the quote — the tightest-
// deadline search is per-calendar — and simply rejects).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/online/service.hpp"
#include "src/online/trace.hpp"
#include "src/resv/fit_query.hpp"
#include "src/resv/snapshot.hpp"
#include "src/shard/sharded_service.hpp"
#include "src/srv/proto.hpp"
#include "src/srv/wal.hpp"

namespace resched::srv {

struct ServerCoreConfig {
  /// 1 = single SchedulerService; > 1 = ShardedService with this many
  /// shards (service.capacity procs EACH).
  int shards = 1;
  online::ServiceConfig service;
  shard::RoutingPolicy routing;  ///< shards > 1 only
  /// Durable-state directory (WAL, snapshot, shutdown artifacts). Empty =
  /// fully ephemeral daemon: no WAL, no recovery.
  std::string state_dir;
  WalSync wal_sync = WalSync::kBatch;
  /// Snapshot + truncate the WAL every N records (0 = never). Single-engine
  /// mode only — a sharded daemon always replays from genesis.
  std::uint64_t snapshot_every = 0;
};

class ServerCore {
 public:
  explicit ServerCore(ServerCoreConfig config);
  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;
  ~ServerCore();

  /// Loads the snapshot (if any), replays WAL records it does not cover,
  /// and opens the log for append. Call exactly once, before apply().
  /// No-op without a state_dir.
  void recover();

  /// Applies one request and returns the response. NOT thread-safe — the
  /// transport serializes calls (the serialization order IS the canonical
  /// request order the WAL captures). For mutating verbs `wal_lsn` (when
  /// non-null) receives the appended record's LSN, 0 if nothing was logged;
  /// the response must not be released to the client before sync() covers
  /// that LSN.
  proto::Response apply(const proto::Request& request,
                        std::uint64_t* wal_lsn = nullptr);

  /// Applies a pipelined flush worth of requests in order, appending one
  /// response per request to `responses`, and returns the highest WAL LSN
  /// appended (0 = nothing logged). Byte-identical responses, WAL records,
  /// and engine state to calling apply() on each request — WAL replay
  /// re-applies one record at a time and must land on the same bytes. The
  /// single-engine path additionally pre-computes the admission finish
  /// floors of the burst's deadline submits through ONE calendar snapshot
  /// + one batched fit pass and arms each as an engine floor hint
  /// (online::SchedulerService::hint_admission_floor), collapsing the
  /// per-admission O(segments) snapshot rebuilds a burst of accepted
  /// deadline jobs otherwise pays. NOT thread-safe (same contract as
  /// apply()).
  std::uint64_t apply_batch(const std::vector<proto::Request>& requests,
                            std::vector<proto::Response>& responses);

  /// Group-commit barrier: blocks until LSN `lsn` is durable. Safe to call
  /// concurrently with apply() on other threads (no core state touched).
  void sync(std::uint64_t lsn);

  /// Writes the shutdown artifacts (trace.jsonl, calendar.tsv) into
  /// state_dir — the byte-comparison surface of the kill-and-resume test.
  /// No-op without a state_dir.
  void finalize();

  bool stopping() const { return stopping_; }
  double now() const;
  proto::ServerStats stats() const;
  std::uint64_t wal_records() const { return next_rid_ - 1; }

 private:
  struct JobRecord {
    int internal_id = -1;
    enum class State { kAccepted, kOffered, kRejected, kCancelled } state =
        State::kRejected;
    double offer = 0.0;   ///< open counter-offer (NaN when none)
    double start = 0.0;   ///< admission schedule window (NaN when none)
    double finish = 0.0;
    /// Retained while an offer is open, for counter-offer-accept.
    std::optional<dag::Dag> dag;
  };

  proto::Response apply_submit(const proto::Request& request);
  proto::Response apply_status(const proto::Request& request);
  proto::Response apply_cancel(const proto::Request& request);
  proto::Response apply_accept(const proto::Request& request);
  proto::Response apply_shutdown(const proto::Request& request);

  /// Shared admission path of submit and counter-offer-accept: stages the
  /// effective record, drives the engine, computes a counter-offer on
  /// rejection, and updates `record`.
  proto::Response admit(const proto::Request& effective, JobRecord& record);

  /// Precomputed admission floors for apply_batch: floors[i] is the floor
  /// hint for requests[i] (nullopt = no hint), all evaluated against one
  /// calendar snapshot frozen at profile epoch `epoch`.
  struct BatchHints {
    std::vector<std::optional<double>> floors;
    std::uint64_t epoch = 0;
  };
  BatchHints prime_floor_hints(const std::vector<proto::Request>& requests);

  /// Engine dispatch (single vs sharded).
  void engine_submit(online::JobSubmission job);
  bool engine_cancel(double t, int job_id);
  void engine_run_until(double t);
  bool engine_live(int internal_id) const;
  const online::JobOutcome* find_outcome(int internal_id) const;

  double clamp_time(double t) const;
  void stage(const proto::Request& effective);
  void wal_hook_fired();
  void maybe_snapshot();
  void write_snapshot();
  void load_snapshot(std::istream& in);
  std::string wal_path() const;
  std::string snapshot_path() const;

  ServerCoreConfig config_;
  std::unique_ptr<online::SchedulerService> single_;
  std::unique_ptr<shard::ShardedService> sharded_;

  /// JSONL trace of every engine decision/event, accumulated in memory
  /// (single: one stream; sharded: one per shard, merged in finalize()).
  std::vector<std::unique_ptr<std::ostringstream>> trace_streams_;
  std::vector<std::unique_ptr<online::TraceWriter>> trace_writers_;

  std::map<int, JobRecord> jobs_;  ///< client job id -> record
  int next_internal_ = 0;

  struct Tallies {
    int submitted = 0;
    int accepted = 0;
    int offered = 0;
    int rejected = 0;
    int cancelled = 0;
  } tallies_;

  /// apply_batch scratch (capacity reused across flushes): concatenated
  /// per-task floor queries of the burst's deadline submits, one slice per
  /// job, resolved by a single fit_many_into pass.
  resv::CalendarSnapshot batch_snapshot_;
  std::vector<resv::FitQuery> batch_queries_;
  std::vector<resv::FitQuery> job_floor_queries_;
  std::vector<std::optional<double>> batch_fits_;

  WalWriter wal_;
  std::uint64_t next_rid_ = 1;
  std::uint64_t records_since_snapshot_ = 0;
  std::string staged_payload_;     ///< effective record for the WAL hook
  std::uint64_t staged_lsn_ = 0;   ///< LSN the hook produced (0 = none)
  bool replaying_ = false;         ///< recovery replay: hook stays silent
  bool recovered_ = false;
  bool stopping_ = false;
};

}  // namespace resched::srv
