#include "src/srv/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/error.hpp"

namespace resched::srv {

Client Client::connect_unix(const std::string& path) {
  RESCHED_CHECK(path.size() < sizeof(sockaddr_un{}.sun_path),
                "client: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RESCHED_CHECK(fd >= 0, "client: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("client: connect('" + path + "') failed: " +
                std::strerror(err));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RESCHED_CHECK(fd >= 0, "client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("client: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("client: connect(tcp) failed: " +
                std::string(std::strerror(err)));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_raw(std::string_view framed) {
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    RESCHED_CHECK(n > 0, "client: send failed");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

proto::Response Client::read_response() {
  std::string payload;
  char chunk[16 * 1024];
  while (true) {
    std::size_t consumed = 0;
    const proto::FrameStatus status =
        proto::try_parse_frame(buffer_, consumed, payload);
    if (status == proto::FrameStatus::kOk) {
      buffer_.erase(0, consumed);
      return proto::decode_response(payload);
    }
    RESCHED_CHECK(status == proto::FrameStatus::kNeedMore,
                  "client: corrupt response frame");
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    RESCHED_CHECK(n > 0, "client: connection closed mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

proto::Response Client::call(const proto::Request& request) {
  RESCHED_CHECK(fd_ >= 0, "client: connection closed");
  send_raw(proto::frame(proto::encode(request)));
  return read_response();
}

std::vector<proto::Response> Client::pipeline(
    const std::vector<proto::Request>& requests) {
  RESCHED_CHECK(fd_ >= 0, "client: connection closed");
  std::string framed;
  for (const proto::Request& request : requests)
    framed += proto::frame(proto::encode(request));
  send_raw(framed);
  std::vector<proto::Response> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    responses.push_back(read_response());
  return responses;
}

proto::Response Client::submit(int job_id, double t, const dag::Dag& dag,
                               std::optional<double> deadline) {
  proto::Request request;
  request.verb = proto::Verb::kSubmit;
  request.job_id = job_id;
  request.time = t;
  request.deadline = deadline;
  request.dag = dag;
  return call(request);
}

proto::Response Client::status(int job_id, double t) {
  proto::Request request;
  request.verb = proto::Verb::kStatus;
  request.job_id = job_id;
  request.time = t;
  return call(request);
}

proto::Response Client::cancel(int job_id, double t) {
  proto::Request request;
  request.verb = proto::Verb::kCancel;
  request.job_id = job_id;
  request.time = t;
  return call(request);
}

proto::Response Client::accept_offer(int job_id, double t) {
  proto::Request request;
  request.verb = proto::Verb::kCounterOfferAccept;
  request.job_id = job_id;
  request.time = t;
  return call(request);
}

proto::Response Client::shutdown_server() {
  proto::Request request;
  request.verb = proto::Verb::kShutdown;
  return call(request);
}

}  // namespace resched::srv
