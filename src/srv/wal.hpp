// Append-only write-ahead log for reschedd (DESIGN.md §10).
//
// The daemon logs every state-changing request (submit / reservation /
// cancel / counter-offer-accept) *before* applying it to the engine, as the
// effective request JSON — the same payload the wire carries, with the
// server-clamped apply time and any server-chosen deadline stamped in — so
// replaying the log through ServerCore::apply() reproduces the pre-crash
// calendar byte-identically.
//
// On-disk layout (all integers little-endian):
//
//   header   ['R','S','W','L'][u32 version][u32 capacity][u32 shards]
//   record*  [u32 len][u32 crc][u64 rid][payload bytes]
//
// `len` is the payload size, `crc` is CRC-32 over the 8 rid bytes followed
// by the payload, and `rid` is the record's monotonically increasing id.
// Rids make replay idempotent across the snapshot window: a snapshot stores
// the next rid to apply, so records the snapshot already covers are skipped
// even if a crash lands between snapshot rename and log truncation.
//
// Torn tails: a crash can leave a partial record (or a complete-length
// record whose payload never fully hit the disk) at the physical end of the
// file. read_wal() accepts the longest valid record prefix and reports the
// dropped tail; WalWriter::open() truncates that tail before appending, so
// one torn write never corrupts the log for subsequent sessions.
//
// Durability: append() only writes; it returns the record's LSN (a dense
// per-writer counter). sync_to(lsn) makes everything up to `lsn` durable
// with at most one fsync — concurrent callers ride the same barrier (group
// commit), which is what keeps the 8-client bench above the fsync rate of
// one disk flush per RPC. WalSync::kAlways degrades to fsync-per-append for
// the strict single-client mode; kNone trusts the page cache (tests).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace resched::srv {

enum class WalSync {
  kAlways,  ///< fsync before append() returns
  kBatch,   ///< fsync on sync_to() — group commit
  kNone,    ///< never fsync (tests / benchmarks of the non-durable path)
};

/// Config fingerprint stored in the file header; a WAL replays only into a
/// server with the same engine shape.
struct WalHeader {
  std::uint32_t version = 1;
  std::uint32_t capacity = 0;
  std::uint32_t shards = 1;
};

struct WalRecord {
  std::uint64_t rid = 0;
  std::string payload;
};

/// Result of scanning a WAL file.
struct WalScan {
  WalHeader header;
  std::vector<WalRecord> records;
  /// Bytes of header + valid records; anything beyond is a torn tail.
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Reads and validates a WAL file. Accepts the longest valid record prefix
/// (see the torn-tail rule above); throws resched::Error when the file
/// cannot be read or its header is not a version-1 RSWL header.
WalScan read_wal(const std::string& path);

class WalWriter {
 public:
  WalWriter() = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Creates `path` with `header`, or opens an existing log for append —
  /// then the stored header must equal `header` (resched::Error otherwise)
  /// and any torn tail is truncated away first.
  void open(const std::string& path, const WalHeader& header, WalSync sync);
  bool is_open() const { return fd_ >= 0; }
  void close();

  /// Appends one record and returns its LSN (1 for the first append of this
  /// writer). Durability is governed by the sync policy; under kBatch the
  /// record is durable only after sync_to() covers the returned LSN.
  std::uint64_t append(std::uint64_t rid, std::string_view payload);

  /// Blocks until every append with LSN <= lsn is durable. One fsync covers
  /// all concurrently waiting callers.
  void sync_to(std::uint64_t lsn);

  /// Drops every record while keeping the header — called after a snapshot
  /// supersedes the log. Durable before return.
  void truncate_records();

  std::uint64_t appended() const { return appended_lsn_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

 private:
  void fsync_now();

  int fd_ = -1;
  WalSync sync_ = WalSync::kAlways;
  std::uint64_t header_bytes_ = 0;
  std::mutex append_mu_;
  std::mutex sync_mu_;
  std::uint64_t appended_lsn_ = 0;  ///< guarded by append_mu_
  std::uint64_t durable_lsn_ = 0;   ///< guarded by sync_mu_
  std::uint64_t fsyncs_ = 0;        ///< guarded by sync_mu_
};

}  // namespace resched::srv
