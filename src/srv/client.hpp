// Blocking client for the reschedd wire protocol (DESIGN.md §10).
//
// One Client owns one connection and issues synchronous request/response
// round-trips; it is not thread-safe (the stress test and the bench give
// each thread its own Client). Transport errors — refused connection, EOF
// mid-response, corrupt frame — throw resched::Error; application-level
// failures come back as Response{ok = false} without throwing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/dag/dag.hpp"
#include "src/srv/proto.hpp"

namespace resched::srv {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  /// One framed round-trip. Throws resched::Error on transport failure.
  proto::Response call(const proto::Request& request);

  /// Pipelined burst: every request goes out in one write, then all
  /// responses are read back in order. The server drains the whole burst
  /// before flushing the WAL, so the batch shares one fsync — this is the
  /// high-throughput submission path (see bench_srv_rpc).
  std::vector<proto::Response> pipeline(
      const std::vector<proto::Request>& requests);

  // Convenience wrappers over call().
  proto::Response submit(int job_id, double t, const dag::Dag& dag,
                         std::optional<double> deadline = std::nullopt);
  proto::Response status(int job_id = -1, double t = 0.0);
  proto::Response cancel(int job_id, double t);
  proto::Response accept_offer(int job_id, double t);
  proto::Response shutdown_server();

 private:
  explicit Client(int fd) : fd_(fd) {}

  void send_raw(std::string_view framed);
  proto::Response read_response();

  int fd_ = -1;
  std::string buffer_;  ///< bytes received beyond the last parsed frame
};

}  // namespace resched::srv
