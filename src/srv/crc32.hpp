// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for wire-frame and
// WAL-record integrity checks. Table-driven, table built at compile time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace resched::srv {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// CRC-32 of `data`, optionally chaining from a previous crc32() result.
inline std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data)
    c = detail::kCrc32Table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace resched::srv
