#include "src/srv/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "src/obs/obs.hpp"
#include "src/srv/crc32.hpp"
#include "src/srv/proto.hpp"
#include "src/util/error.hpp"

namespace resched::srv {
namespace {

constexpr char kMagic[4] = {'R', 'S', 'W', 'L'};
constexpr std::size_t kHeaderBytes = 16;   // magic + version + capacity + shards
constexpr std::size_t kRecordHeader = 16;  // len + crc + rid

void put_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_le64(std::string& out, std::uint64_t v) {
  put_le32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_le32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_le32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::uint64_t get_le64(const char* p) {
  return static_cast<std::uint64_t>(get_le32(p)) |
         static_cast<std::uint64_t>(get_le32(p + 4)) << 32;
}

std::string encode_header(const WalHeader& header) {
  std::string out(kMagic, sizeof kMagic);
  put_le32(out, header.version);
  put_le32(out, header.capacity);
  put_le32(out, header.shards);
  return out;
}

std::string encode_record(std::uint64_t rid, std::string_view payload) {
  std::string body;
  body.reserve(8 + payload.size());
  put_le64(body, rid);
  body.append(payload);
  std::string out;
  out.reserve(kRecordHeader + payload.size());
  put_le32(out, static_cast<std::uint32_t>(payload.size()));
  put_le32(out, crc32(body));
  out.append(body);
  return out;
}

}  // namespace

WalScan read_wal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RESCHED_CHECK(in.good(), "wal: cannot open '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  RESCHED_CHECK(data.size() >= kHeaderBytes, "wal: file shorter than header");
  RESCHED_CHECK(std::memcmp(data.data(), kMagic, sizeof kMagic) == 0,
                "wal: bad magic");
  WalScan scan;
  scan.header.version = get_le32(data.data() + 4);
  scan.header.capacity = get_le32(data.data() + 8);
  scan.header.shards = get_le32(data.data() + 12);
  RESCHED_CHECK(scan.header.version == 1, "wal: unsupported version");

  std::size_t pos = kHeaderBytes;
  while (true) {
    if (data.size() - pos < kRecordHeader) break;  // partial record header
    const std::uint32_t len = get_le32(data.data() + pos);
    if (len > proto::kMaxPayload) break;  // garbage length — torn tail
    if (data.size() - pos - kRecordHeader < len) break;  // partial payload
    const std::uint32_t want_crc = get_le32(data.data() + pos + 4);
    const std::string_view body(data.data() + pos + 8, 8 + len);
    if (crc32(body) != want_crc) break;  // torn or corrupted tail
    WalRecord record;
    record.rid = get_le64(body.data());
    record.payload.assign(body.substr(8));
    scan.records.push_back(std::move(record));
    pos += kRecordHeader + len;
  }
  scan.valid_bytes = pos;
  scan.torn_tail = pos < data.size();
  return scan;
}

WalWriter::~WalWriter() { close(); }

void WalWriter::open(const std::string& path, const WalHeader& header,
                     WalSync sync) {
  RESCHED_CHECK(fd_ < 0, "wal: writer already open");
  sync_ = sync;
  header_bytes_ = kHeaderBytes;

  bool fresh = true;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.good() && probe.peek() != std::ifstream::traits_type::eof())
      fresh = false;
  }

  std::uint64_t resume_at = kHeaderBytes;
  if (!fresh) {
    const WalScan scan = read_wal(path);
    RESCHED_CHECK(scan.header.version == header.version &&
                      scan.header.capacity == header.capacity &&
                      scan.header.shards == header.shards,
                  "wal: existing log written for a different server config");
    resume_at = scan.valid_bytes;
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  RESCHED_CHECK(fd_ >= 0, "wal: open('" + path +
                              "') failed: " + std::strerror(errno));
  if (fresh) {
    const std::string head = encode_header(header);
    RESCHED_CHECK(::write(fd_, head.data(), head.size()) ==
                      static_cast<ssize_t>(head.size()),
                  "wal: header write failed");
  } else {
    // Drop any torn tail so the next append lands on a record boundary.
    RESCHED_CHECK(::ftruncate(fd_, static_cast<off_t>(resume_at)) == 0,
                  "wal: truncating torn tail failed");
  }
  RESCHED_CHECK(::lseek(fd_, 0, SEEK_END) >= 0, "wal: seek failed");
  if (sync_ != WalSync::kNone) fsync_now();
}

void WalWriter::close() {
  if (fd_ < 0) return;
  if (sync_ == WalSync::kBatch) fsync_now();
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t WalWriter::append(std::uint64_t rid, std::string_view payload) {
  RESCHED_CHECK(fd_ >= 0, "wal: writer not open");
  RESCHED_CHECK(payload.size() <= proto::kMaxPayload, "wal: payload oversized");
  const std::string record = encode_record(rid, payload);
  std::uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    const char* p = record.data();
    std::size_t left = record.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      RESCHED_CHECK(n > 0, "wal: append write failed");
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    lsn = ++appended_lsn_;
  }
  OBS_COUNT("srv.wal.records", 1);
  OBS_COUNT("srv.wal.bytes", record.size());
  if (sync_ == WalSync::kAlways) sync_to(lsn);
  return lsn;
}

void WalWriter::sync_to(std::uint64_t lsn) {
  if (sync_ == WalSync::kNone) return;
  std::lock_guard<std::mutex> lock(sync_mu_);
  if (durable_lsn_ >= lsn) return;  // a concurrent fsync already covered us
  std::uint64_t covered = 0;
  {
    std::lock_guard<std::mutex> append_lock(append_mu_);
    covered = appended_lsn_;
  }
  fsync_now();
  durable_lsn_ = covered;
}

void WalWriter::truncate_records() {
  RESCHED_CHECK(fd_ >= 0, "wal: writer not open");
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  std::lock_guard<std::mutex> append_lock(append_mu_);
  RESCHED_CHECK(::ftruncate(fd_, static_cast<off_t>(header_bytes_)) == 0,
                "wal: truncate failed");
  RESCHED_CHECK(::lseek(fd_, 0, SEEK_END) >= 0, "wal: seek failed");
  if (sync_ != WalSync::kNone) fsync_now();
  durable_lsn_ = appended_lsn_;
}

void WalWriter::fsync_now() {
  RESCHED_CHECK(::fsync(fd_) == 0, "wal: fsync failed");
  ++fsyncs_;
  OBS_COUNT("srv.wal.fsyncs", 1);
}

}  // namespace resched::srv
