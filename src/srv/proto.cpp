#include "src/srv/proto.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "src/online/trace.hpp"
#include "src/srv/crc32.hpp"
#include "src/util/error.hpp"

namespace resched::srv::proto {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

[[noreturn]] void fail(const std::string& what) {
  throw Error("proto: " + what);
}

// --- minimal JSON value + recursive-descent parser -------------------------
//
// Just enough JSON for this protocol: objects, arrays, strings, numbers,
// booleans, null. Depth-capped and allocation-bounded (payloads are capped
// at kMaxPayload before they reach the parser), and every malformed input
// lands in resched::Error — the fuzz loop in tests/srv_proto_test.cpp
// feeds arbitrary bytes through here.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  const Json* find(std::string_view key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (p_ != end_) fail("trailing bytes after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  char peek() {
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (p_ == end_ || *p_ != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n || std::memcmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }

  Json value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    Json v;
    switch (peek()) {
      case '{': v = object(); break;
      case '[': v = array(); break;
      case '"':
        v.type = Json::Type::kString;
        v.str = string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = Json::Type::kBool;
        v.boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = Json::Type::kBool;
        v.boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type = Json::Type::kNull;
        break;
      default:
        v.type = Json::Type::kNumber;
        v.number = number();
        break;
    }
    --depth_;
    return v;
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++p_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      if (v.find(key) != nullptr) fail("duplicate key '" + key + "'");
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++p_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (p_ == end_) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*p_++);
      if (c == '"') return out;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (p_ == end_) fail("unterminated escape");
      const char esc = *p_++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) fail("truncated \\u escape");
      const char c = *p_++;
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return cp;
  }

  // BMP codepoint -> UTF-8 (surrogate halves are encoded as-is: the decoder
  // must not crash on them, and the encoder never emits them).
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  double number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      digits = digits || (*p_ >= '0' && *p_ <= '9');
      ++p_;
    }
    if (!digits) fail("bad number");
    std::string token(start, p_);
    char* parse_end = nullptr;
    const double v = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size()) fail("bad number");
    return v;
  }

  const char* p_;
  const char* end_;
  int depth_ = 0;
};

// --- typed field extraction ------------------------------------------------

const Json& get(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  if (v == nullptr) fail("missing key '" + std::string(key) + "'");
  return *v;
}

int as_int(const Json& v, std::string_view what) {
  if (v.type != Json::Type::kNumber) fail(std::string(what) + " must be an integer");
  const double d = v.number;
  if (!(std::floor(d) == d) || d < -2147483648.0 || d > 2147483647.0)
    fail(std::string(what) + " out of integer range");
  return static_cast<int>(d);
}

std::uint64_t as_u64(const Json& v, std::string_view what) {
  if (v.type != Json::Type::kNumber) fail(std::string(what) + " must be an integer");
  const double d = v.number;
  if (!(std::floor(d) == d) || d < 0.0 || d > 9007199254740992.0)
    fail(std::string(what) + " out of range");
  return static_cast<std::uint64_t>(d);
}

// Finite number, or null -> NaN (the wire form of "not set").
double as_double_or_null(const Json& v, std::string_view what) {
  if (v.type == Json::Type::kNull) return kNaN;
  if (v.type != Json::Type::kNumber) fail(std::string(what) + " must be a number or null");
  return v.number;
}

double as_double(const Json& v, std::string_view what) {
  if (v.type != Json::Type::kNumber) fail(std::string(what) + " must be a number");
  return v.number;
}

bool as_bool(const Json& v, std::string_view what) {
  if (v.type != Json::Type::kBool) fail(std::string(what) + " must be a boolean");
  return v.boolean;
}

const std::string& as_string(const Json& v, std::string_view what) {
  if (v.type != Json::Type::kString) fail(std::string(what) + " must be a string");
  return v.str;
}

void check_keys(const Json& obj, std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj.fields) {
    bool ok = false;
    for (std::string_view a : allowed) ok = ok || key == a;
    if (!ok) fail("unexpected key '" + key + "'");
  }
}

// --- encoding helpers ------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

// Finite doubles render with format_double (exact strtod round-trip);
// NaN / infinities render as null, the wire form of "not set".
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
  } else {
    out += online::format_double(v);
  }
}

void append_dag(std::string& out, const dag::Dag& dag) {
  out += "{\"costs\":[";
  for (int i = 0; i < dag.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('[');
    append_number(out, dag.cost(i).seq_time);
    out.push_back(',');
    append_number(out, dag.cost(i).alpha);
    out.push_back(']');
  }
  out += "],\"edges\":[";
  bool first = true;
  for (int u = 0; u < dag.size(); ++u) {
    for (int v : dag.successors(u)) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('[');
      out += std::to_string(u);
      out.push_back(',');
      out += std::to_string(v);
      out.push_back(']');
    }
  }
  out += "]}";
}

dag::Dag decode_dag(const Json& v) {
  if (v.type != Json::Type::kObject) fail("dag must be an object");
  check_keys(v, {"costs", "edges"});
  const Json& costs_json = get(v, "costs");
  const Json& edges_json = get(v, "edges");
  if (costs_json.type != Json::Type::kArray) fail("dag.costs must be an array");
  if (edges_json.type != Json::Type::kArray) fail("dag.edges must be an array");
  if (costs_json.items.empty()) fail("dag.costs must name at least one task");
  std::vector<dag::TaskCost> costs;
  costs.reserve(costs_json.items.size());
  for (const Json& pair : costs_json.items) {
    if (pair.type != Json::Type::kArray || pair.items.size() != 2)
      fail("dag.costs entries must be [seq_time, alpha] pairs");
    costs.push_back({as_double(pair.items[0], "dag seq_time"),
                     as_double(pair.items[1], "dag alpha")});
    if (!(costs.back().seq_time > 0.0) || !std::isfinite(costs.back().seq_time))
      fail("dag seq_time must be a positive finite number");
    if (!(costs.back().alpha >= 0.0 && costs.back().alpha <= 1.0))
      fail("dag alpha must lie in [0, 1]");
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(edges_json.items.size());
  for (const Json& pair : edges_json.items) {
    if (pair.type != Json::Type::kArray || pair.items.size() != 2)
      fail("dag.edges entries must be [from, to] pairs");
    edges.emplace_back(as_int(pair.items[0], "dag edge endpoint"),
                       as_int(pair.items[1], "dag edge endpoint"));
  }
  // The Dag constructor revalidates structure (range, cycles, duplicates)
  // and throws resched::Error itself on violations.
  return dag::Dag(std::move(costs), edges);
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kSubmit: return "submit";
    case Verb::kStatus: return "status";
    case Verb::kCancel: return "cancel";
    case Verb::kCounterOfferAccept: return "counter-offer-accept";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

Verb verb_from_string(std::string_view s) {
  if (s == "submit") return Verb::kSubmit;
  if (s == "status") return Verb::kStatus;
  if (s == "cancel") return Verb::kCancel;
  if (s == "counter-offer-accept") return Verb::kCounterOfferAccept;
  if (s == "shutdown") return Verb::kShutdown;
  fail("unknown verb '" + std::string(s) + "'");
}

std::string encode(const Request& request) {
  std::string out = "{\"verb\":\"";
  out += to_string(request.verb);
  out += "\",\"job\":";
  out += std::to_string(request.job_id);
  out += ",\"t\":";
  append_number(out, request.time);
  // "deadline" is carried exactly when the verb can use one (null when
  // unset), so key presence is a function of the verb alone and decode ->
  // encode reproduces the input bytes.
  if (request.verb == Verb::kSubmit || request.verb == Verb::kCounterOfferAccept) {
    out += ",\"deadline\":";
    append_number(out, request.deadline ? *request.deadline : kNaN);
  }
  if (request.verb == Verb::kSubmit) {
    RESCHED_CHECK(request.dag.has_value(), "proto: submit request needs a dag");
    out += ",\"dag\":";
    append_dag(out, *request.dag);
  }
  out.push_back('}');
  return out;
}

Request decode_request(std::string_view payload) {
  const Json root = Parser(payload).parse();
  if (root.type != Json::Type::kObject) fail("request must be a JSON object");
  Request request;
  request.verb = verb_from_string(as_string(get(root, "verb"), "verb"));
  request.job_id = as_int(get(root, "job"), "job");
  request.time = as_double(get(root, "t"), "t");
  if (!std::isfinite(request.time)) fail("t must be finite");
  switch (request.verb) {
    case Verb::kSubmit: {
      check_keys(root, {"verb", "job", "t", "deadline", "dag"});
      const double d = as_double_or_null(get(root, "deadline"), "deadline");
      if (!std::isnan(d)) {
        if (!std::isfinite(d)) fail("deadline must be finite or null");
        request.deadline = d;
      }
      request.dag = decode_dag(get(root, "dag"));
      break;
    }
    case Verb::kCounterOfferAccept: {
      check_keys(root, {"verb", "job", "t", "deadline"});
      const double d = as_double_or_null(get(root, "deadline"), "deadline");
      if (!std::isnan(d)) {
        if (!std::isfinite(d)) fail("deadline must be finite or null");
        request.deadline = d;
      }
      break;
    }
    case Verb::kStatus:
    case Verb::kCancel:
    case Verb::kShutdown:
      check_keys(root, {"verb", "job", "t"});
      break;
  }
  return request;
}

std::string encode(const Response& response) {
  std::string out = "{\"ok\":";
  out += response.ok ? "true" : "false";
  out += ",\"error\":";
  append_escaped(out, response.error);
  out += ",\"job\":";
  out += std::to_string(response.job_id);
  out += ",\"state\":";
  append_escaped(out, response.state);
  out += ",\"offer\":";
  append_number(out, response.offer);
  out += ",\"start\":";
  append_number(out, response.start);
  out += ",\"finish\":";
  append_number(out, response.finish);
  out += ",\"now\":";
  append_number(out, response.now);
  if (response.stats) {
    const ServerStats& s = *response.stats;
    out += ",\"stats\":{\"now\":";
    append_number(out, s.now);
    out += ",\"events\":";
    out += std::to_string(s.events);
    out += ",\"submitted\":";
    out += std::to_string(s.submitted);
    out += ",\"accepted\":";
    out += std::to_string(s.accepted);
    out += ",\"offered\":";
    out += std::to_string(s.offered);
    out += ",\"rejected\":";
    out += std::to_string(s.rejected);
    out += ",\"cancelled\":";
    out += std::to_string(s.cancelled);
    out += ",\"wal_records\":";
    out += std::to_string(s.wal_records);
    out += ",\"shards\":";
    out += std::to_string(s.shards);
    out += "}";
  }
  out.push_back('}');
  return out;
}

Response decode_response(std::string_view payload) {
  const Json root = Parser(payload).parse();
  if (root.type != Json::Type::kObject) fail("response must be a JSON object");
  check_keys(root, {"ok", "error", "job", "state", "offer", "start", "finish",
                    "now", "stats"});
  Response response;
  response.ok = as_bool(get(root, "ok"), "ok");
  response.error = as_string(get(root, "error"), "error");
  response.job_id = as_int(get(root, "job"), "job");
  response.state = as_string(get(root, "state"), "state");
  response.offer = as_double_or_null(get(root, "offer"), "offer");
  response.start = as_double_or_null(get(root, "start"), "start");
  response.finish = as_double_or_null(get(root, "finish"), "finish");
  // A daemon that has not processed any event yet reports now = -inf,
  // which rides the wire as null (non-finite doubles have no JSON form).
  response.now = as_double_or_null(get(root, "now"), "now");
  if (const Json* stats = root.find("stats")) {
    if (stats->type != Json::Type::kObject) fail("stats must be an object");
    check_keys(*stats, {"now", "events", "submitted", "accepted", "offered",
                        "rejected", "cancelled", "wal_records", "shards"});
    ServerStats s;
    s.now = as_double_or_null(get(*stats, "now"), "stats.now");
    s.events = as_u64(get(*stats, "events"), "stats.events");
    s.submitted = as_int(get(*stats, "submitted"), "stats.submitted");
    s.accepted = as_int(get(*stats, "accepted"), "stats.accepted");
    s.offered = as_int(get(*stats, "offered"), "stats.offered");
    s.rejected = as_int(get(*stats, "rejected"), "stats.rejected");
    s.cancelled = as_int(get(*stats, "cancelled"), "stats.cancelled");
    s.wal_records = as_u64(get(*stats, "wal_records"), "stats.wal_records");
    s.shards = as_int(get(*stats, "shards"), "stats.shards");
    response.stats = s;
  }
  return response;
}

// --- framing ---------------------------------------------------------------

namespace {
void append_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t read_le32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}
}  // namespace

std::string frame(std::string_view payload) {
  RESCHED_CHECK(payload.size() <= kMaxPayload, "proto: frame payload oversized");
  std::string out;
  out.reserve(kFrameHeader + payload.size());
  append_le32(out, static_cast<std::uint32_t>(payload.size()));
  append_le32(out, crc32(payload));
  out.append(payload);
  return out;
}

FrameStatus try_parse_frame(std::string_view buf, std::size_t& consumed,
                            std::string& payload) {
  consumed = 0;
  if (buf.size() < kFrameHeader) return FrameStatus::kNeedMore;
  const std::uint32_t len = read_le32(buf.data());
  if (len > kMaxPayload) return FrameStatus::kOversized;
  const std::uint32_t want_crc = read_le32(buf.data() + 4);
  if (buf.size() < kFrameHeader + len) return FrameStatus::kNeedMore;
  const std::string_view body = buf.substr(kFrameHeader, len);
  if (crc32(body) != want_crc) return FrameStatus::kCorrupt;
  payload.assign(body);
  consumed = kFrameHeader + len;
  return FrameStatus::kOk;
}

}  // namespace resched::srv::proto
