// reschedd wire protocol: length-prefixed, CRC-framed JSON messages
// (DESIGN.md §10).
//
// A connection carries a sequence of frames in each direction; every frame
// is
//
//   [u32 payload length][u32 CRC-32 of payload][payload bytes]
//
// with both integers little-endian and the payload one JSON object in a
// fixed key order (the JSONL discipline of src/online/trace.*: doubles are
// rendered with format_double, so encode -> decode -> encode is
// byte-identical — the round-trip property tests/srv_proto_test.cpp pins).
// Frames whose length field exceeds kMaxPayload are rejected before any
// allocation; frames whose CRC does not match are rejected without looking
// at the payload. Requests:
//
//   {"verb":"submit","job":3,"t":100,"deadline":500,"dag":
//     {"costs":[[3600,0.25],...],"edges":[[0,1],...]}}
//   {"verb":"status","job":3,"t":0}            job -1 = whole-server stats
//   {"verb":"cancel","job":3,"t":120}
//   {"verb":"counter-offer-accept","job":3,"t":130,"deadline":null}
//   {"verb":"shutdown","job":-1,"t":0}
//
// "t" is the client's requested apply time; the daemon clamps it to its
// stream clock and stamps the *effective* time back into the record it
// writes to the WAL, so a WAL replay applies exactly what the live run
// applied. On "counter-offer-accept" the daemon likewise stamps the offered
// deadline it is accepting into the logged record ("deadline" is null on
// the client's wire request).
//
// Responses carry an ok/error envelope, the job's admission verdict and
// window, and — for whole-server status — a stats block.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/dag/dag.hpp"

namespace resched::srv::proto {

/// Hard cap on one frame's payload (1 MiB) — a length prefix beyond this is
/// rejected before any buffering.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;
/// Bytes of framing ahead of the payload (length + CRC).
inline constexpr std::size_t kFrameHeader = 8;

enum class Verb {
  kSubmit,
  kStatus,
  kCancel,
  kCounterOfferAccept,
  kShutdown,
};

const char* to_string(Verb verb);
/// Throws resched::Error on an unknown verb string.
Verb verb_from_string(std::string_view s);

struct Request {
  Verb verb = Verb::kStatus;
  int job_id = -1;
  /// Requested apply time (submit time for kSubmit); the server clamps to
  /// its clock and logs the clamped value.
  double time = 0.0;
  /// kSubmit: requested absolute deadline (nullopt = best-effort).
  /// kCounterOfferAccept: the accepted deadline, stamped by the server when
  /// logging (null on the wire from clients).
  std::optional<double> deadline;
  /// kSubmit only.
  std::optional<dag::Dag> dag;
};

/// Whole-server roll-up returned by status with job -1.
struct ServerStats {
  double now = 0.0;
  std::uint64_t events = 0;  ///< engine events processed, all shards
  int submitted = 0;
  int accepted = 0;
  int offered = 0;  ///< rejected with a counter-offer still open
  int rejected = 0;
  int cancelled = 0;
  std::uint64_t wal_records = 0;
  int shards = 1;
};

struct Response {
  bool ok = true;
  std::string error;  ///< empty when ok
  int job_id = -1;
  /// Lifecycle verdict: "accepted", "done", "offered", "rejected",
  /// "cancelled", "unknown"; "ok" for server-level acks (status/shutdown).
  std::string state;
  /// Offered deadline while an offer is open (NaN <-> null otherwise).
  double offer = 0.0;
  double start = 0.0;   ///< first task start (NaN when not scheduled)
  double finish = 0.0;  ///< last task finish (NaN when not scheduled)
  double now = 0.0;     ///< server stream clock after applying the request
  std::optional<ServerStats> stats;
};

// --- JSON payload codec ---------------------------------------------------

std::string encode(const Request& request);
std::string encode(const Response& response);
/// Throw resched::Error on any schema violation; never crash on arbitrary
/// bytes (the fuzz loop in tests/srv_proto_test.cpp feeds them).
Request decode_request(std::string_view payload);
Response decode_response(std::string_view payload);

// --- Framing ---------------------------------------------------------------

/// Wraps a payload in the length + CRC frame. Throws when oversized.
std::string frame(std::string_view payload);

enum class FrameStatus {
  kOk,        ///< one frame consumed, payload extracted
  kNeedMore,  ///< buffer holds only a frame prefix — read more bytes
  kOversized, ///< length prefix exceeds kMaxPayload — close the connection
  kCorrupt,   ///< CRC mismatch — close the connection
};

/// Attempts to take one frame off the front of `buf`. On kOk sets
/// `consumed` to the frame's total size and fills `payload`; on any other
/// status `consumed` is 0 and `payload` is untouched.
FrameStatus try_parse_frame(std::string_view buf, std::size_t& consumed,
                            std::string& payload);

}  // namespace resched::srv::proto
