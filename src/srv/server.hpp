// reschedd socket front-end (DESIGN.md §10).
//
// Listens on a unix-domain socket (the deployment mode: filesystem
// permissions are the access control) or a loopback TCP port (tests /
// cross-host benches), accepts concurrent clients thread-per-connection,
// and speaks the framed protocol of src/srv/proto.*.
//
// Concurrency model: connections read and frame-parse in parallel, but
// every request is applied under ONE core mutex — the acquisition order is
// the canonical request serialization, and because ServerCore logs at the
// write-ahead point inside that critical section, the WAL order IS the
// canonical order (the concurrent-client stress test replays the WAL
// single-threaded and demands identical outcomes). The fsync, however,
// happens *outside* the lock: a writer leaves the critical section holding
// its LSN and blocks in WalWriter::sync_to, so concurrent commits share
// one disk flush (group commit) while the next request is already being
// scheduled.
//
// Shutdown: the "shutdown" verb answers, then closes the listener and
// nudges every parked connection; serve() joins all connection threads and
// returns, after which the daemon finalizes the core (artifacts) and
// exits. stop() does the same from a signal handler's thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/srv/server_core.hpp"

namespace resched::srv {

struct ServerOptions {
  /// Unix-domain listening socket path (unlinked + rebound on start).
  /// Takes precedence over TCP when non-empty.
  std::string unix_path;
  /// Loopback TCP listener; port 0 picks an ephemeral port (see port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
};

class Server {
 public:
  /// The core is borrowed and must outlive the server; recover() it first.
  Server(ServerCore& core, ServerOptions options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Binds and listens; throws resched::Error on any socket failure.
  void start();
  /// Bound TCP port (after start(); meaningful in TCP mode).
  int port() const { return port_; }

  /// Accept loop. Blocks until a client issues "shutdown" (or stop() is
  /// called), then joins every connection thread and returns.
  void serve();

  /// Initiates shutdown from outside the accept loop (signal handlers).
  void stop();

 private:
  void run_connection(int fd);
  void close_listener();

  ServerCore& core_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::mutex core_mu_;   ///< the canonical request serialization point
  std::mutex conn_mu_;   ///< guards threads_ / conn_fds_ / stopping_
  std::vector<std::thread> threads_;
  std::set<int> conn_fds_;
  bool stopping_ = false;
};

}  // namespace resched::srv
