#include "src/srv/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/util/error.hpp"

namespace resched::srv {
namespace {

void send_all(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    RESCHED_CHECK(n > 0, "srv: send failed");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  OBS_COUNT("srv.bytes.out", data.size());
}

#ifndef RESCHED_OBS_DISABLED
void record_rpc(proto::Verb verb, std::int64_t ns) {
  switch (verb) {
    case proto::Verb::kSubmit:
      OBS_COUNT("srv.rpc.submit", 1);
      OBS_HIST("srv.rpc.submit.ns", ns);
      break;
    case proto::Verb::kStatus:
      OBS_COUNT("srv.rpc.status", 1);
      OBS_HIST("srv.rpc.status.ns", ns);
      break;
    case proto::Verb::kCancel:
      OBS_COUNT("srv.rpc.cancel", 1);
      OBS_HIST("srv.rpc.cancel.ns", ns);
      break;
    case proto::Verb::kCounterOfferAccept:
      OBS_COUNT("srv.rpc.accept", 1);
      OBS_HIST("srv.rpc.accept.ns", ns);
      break;
    case proto::Verb::kShutdown:
      OBS_COUNT("srv.rpc.shutdown", 1);
      OBS_HIST("srv.rpc.shutdown.ns", ns);
      break;
  }
}
#endif

}  // namespace

Server::Server(ServerCore& core, ServerOptions options)
    : core_(core), options_(std::move(options)) {}

Server::~Server() {
  stop();
  // serve() normally joins; cover the start()-without-serve() case.
  std::vector<std::thread> leftovers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    leftovers.swap(threads_);
  }
  for (std::thread& t : leftovers) t.join();
}

void Server::start() {
  RESCHED_CHECK(listen_fd_ < 0, "srv: server already started");
  if (!options_.unix_path.empty()) {
    RESCHED_CHECK(options_.unix_path.size() < sizeof(sockaddr_un{}.sun_path),
                  "srv: unix socket path too long");
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RESCHED_CHECK(listen_fd_ >= 0, "srv: socket() failed");
    ::unlink(options_.unix_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    RESCHED_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr) == 0,
                  "srv: bind('" + options_.unix_path +
                      "') failed: " + std::strerror(errno));
  } else {
    RESCHED_CHECK(options_.tcp_port >= 0,
                  "srv: neither unix_path nor tcp_port configured");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    RESCHED_CHECK(listen_fd_ >= 0, "srv: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    RESCHED_CHECK(
        ::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) == 1,
        "srv: bad tcp_host");
    RESCHED_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr) == 0,
                  "srv: bind(tcp) failed: " + std::string(std::strerror(errno)));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    RESCHED_CHECK(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  "srv: getsockname failed");
    port_ = ntohs(bound.sin_port);
  }
  RESCHED_CHECK(::listen(listen_fd_, 64) == 0, "srv: listen failed");
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (stopping_) return;
  stopping_ = true;
  close_listener();
  // Nudge parked reads so connection threads notice the shutdown.
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::serve() {
  RESCHED_CHECK(listen_fd_ >= 0, "srv: serve() before start()");
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    OBS_COUNT("srv.conn.accepted", 1);
    conn_fds_.insert(fd);
    threads_.emplace_back([this, fd] { run_connection(fd); });
  }
  stop();
  // Join under no lock — connection threads take conn_mu_ on exit.
  while (true) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (threads_.empty()) break;
      t = std::move(threads_.back());
      threads_.pop_back();
    }
    t.join();
  }
}

void Server::run_connection(int fd) {
  std::string buffer;
  std::string payload;
  char chunk[16 * 1024];
  bool saw_shutdown = false;

  std::string out;  ///< framed responses accumulated per drain
  /// Per drained flush: decode-phase results. slot_errors[i] holds the
  /// error response of an undecodable frame i; nullopt slots correspond,
  /// in order, to entries of `batch`.
  std::vector<std::optional<proto::Response>> slot_errors;
  std::vector<proto::Request> batch;
  std::vector<proto::Response> batch_responses;
#ifndef RESCHED_OBS_DISABLED
  struct PendingRpc {
    proto::Verb verb;
    std::int64_t t0;
  };
  std::vector<PendingRpc> pending_rpcs;
#endif

  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    OBS_COUNT("srv.bytes.in", static_cast<std::uint64_t>(n));
    buffer.append(chunk, static_cast<std::size_t>(n));

    // Drain every complete frame before touching the disk or the socket:
    // a pipelining client's whole burst is decoded up front, applied under
    // ONE core-lock acquisition (ServerCore::apply_batch — which also
    // batch-precomputes the burst's admission floors), covered by ONE
    // fsync (group commit), and answered with ONE send. Responses still
    // release only after their LSNs are durable.
    bool close_conn = false;
    out.clear();
#ifndef RESCHED_OBS_DISABLED
    pending_rpcs.clear();
#endif
    std::uint64_t batch_lsn = 0;
    proto::FrameStatus status = proto::FrameStatus::kNeedMore;
    while (!saw_shutdown) {
      // Decode phase. Stops after a shutdown frame: frames pipelined
      // behind a successful shutdown must never reach the engine (they
      // stay in `buffer` and die with the connection, as before).
      slot_errors.clear();
      batch.clear();
      batch_responses.clear();
      bool stop_decode = false;
      std::size_t consumed = 0;
      while (!stop_decode &&
             (status = proto::try_parse_frame(buffer, consumed, payload)) ==
                 proto::FrameStatus::kOk) {
        buffer.erase(0, consumed);
        try {
          proto::Request request = proto::decode_request(payload);
          if (request.verb == proto::Verb::kShutdown) stop_decode = true;
          slot_errors.emplace_back(std::nullopt);
          batch.push_back(std::move(request));
        } catch (const std::exception& e) {
          proto::Response response;
          response.ok = false;
          response.error = e.what();
          response.state = "error";
          slot_errors.emplace_back(std::move(response));
          OBS_COUNT("srv.rpc.errors", 1);
        }
      }
      if (slot_errors.empty()) break;  // flush fully drained (or unframed)

      // Apply phase: the whole burst under one lock.
#ifndef RESCHED_OBS_DISABLED
      const bool timing = obs::metrics_enabled() && !batch.empty();
      const std::int64_t t0 = timing ? obs::now_ns() : 0;
#endif
      if (!batch.empty()) {
        std::unique_lock<std::mutex> lock(core_mu_);
#ifndef RESCHED_OBS_DISABLED
        if (timing) OBS_HIST("srv.core.lock_wait.ns", obs::now_ns() - t0);
        OBS_HIST("srv.core.batch.frames",
                 static_cast<std::int64_t>(batch.size()));
#endif
        const std::uint64_t lsn = core_.apply_batch(batch, batch_responses);
        if (lsn > batch_lsn) batch_lsn = lsn;
      }

      // Merge phase: responses go out in frame order.
      std::size_t bi = 0;
      for (const std::optional<proto::Response>& error : slot_errors) {
        const proto::Response& response =
            error.has_value() ? *error : batch_responses[bi];
        if (!error.has_value()) {
#ifndef RESCHED_OBS_DISABLED
          if (timing) pending_rpcs.push_back({batch[bi].verb, t0});
#endif
          if (batch[bi].verb == proto::Verb::kShutdown && response.ok)
            saw_shutdown = true;
          ++bi;
        }
        if (!response.ok) OBS_COUNT("srv.rpc.errors", 1);
        out += proto::frame(proto::encode(response));
      }
    }
    if (status == proto::FrameStatus::kCorrupt ||
        status == proto::FrameStatus::kOversized) {
      // Framing is gone — nothing further on this connection can be
      // trusted, and a response could tear mid-stream. Drop the client.
      OBS_COUNT("srv.frames.rejected", 1);
      close_conn = true;
    }

    // Group commit: the core lock is free while we wait on the disk, and
    // one flush covers the entire drained batch (lsn 0 = read-only batch,
    // sync returns immediately).
    core_.sync(batch_lsn);
#ifndef RESCHED_OBS_DISABLED
    if (!pending_rpcs.empty()) {
      const std::int64_t now = obs::now_ns();
      for (const PendingRpc& rpc : pending_rpcs)
        record_rpc(rpc.verb, now - rpc.t0);
    }
#endif
    if (!out.empty()) {
      try {
        send_all(fd, out);
      } catch (const std::exception&) {
        close_conn = true;  // peer went away mid-response
      }
    }
    if (saw_shutdown || close_conn) break;
  }

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
  OBS_COUNT("srv.conn.closed", 1);
  if (saw_shutdown) stop();
}

}  // namespace resched::srv
