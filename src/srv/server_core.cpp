#include "src/srv/server_core.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <utility>

#include "src/core/tightest_deadline.hpp"
#include "src/ft/checkpoint.hpp"
#include "src/ft/wire.hpp"
#include "src/obs/obs.hpp"
#include "src/resv/profile.hpp"
#include "src/util/error.hpp"

namespace resched::srv {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr char kSnapshotMagic[4] = {'R', 'S', 'S', 'N'};

bool file_exists(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  return probe.good();
}

/// fsync a written file (and, for durability of a rename, its directory).
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  RESCHED_CHECK(fd >= 0, "srv: open for fsync failed: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  RESCHED_CHECK(rc == 0, "srv: fsync failed: " + path);
}

}  // namespace

ServerCore::ServerCore(ServerCoreConfig config) : config_(std::move(config)) {
  RESCHED_CHECK(config_.shards >= 1, "srv: shards must be >= 1");
  RESCHED_CHECK(config_.snapshot_every == 0 || config_.shards == 1,
                "srv: snapshots require single-engine mode");
  // The daemon owns counter-offer negotiation (client-driven, via the
  // "offered" state + counter-offer-accept); the engine itself must reject
  // infeasible deadlines outright so nothing is tentatively committed.
  config_.service.admission = online::AdmissionPolicy::kRejectInfeasible;

  const auto hook = [this](const online::SchedulerService::WalOp&) {
    wal_hook_fired();
  };
  if (config_.shards == 1) {
    single_ = std::make_unique<online::SchedulerService>(config_.service);
    auto stream = std::make_unique<std::ostringstream>();
    trace_writers_.push_back(std::make_unique<online::TraceWriter>(*stream));
    trace_streams_.push_back(std::move(stream));
    single_->set_trace(trace_writers_[0].get());
    single_->set_wal_hook(hook);
  } else {
    shard::ShardedConfig sc;
    sc.shards = config_.shards;
    sc.threads = 1;
    sc.service = config_.service;
    sc.routing = config_.routing;
    sharded_ = std::make_unique<shard::ShardedService>(sc);
    for (int s = 0; s < config_.shards; ++s) {
      auto stream = std::make_unique<std::ostringstream>();
      trace_writers_.push_back(
          std::make_unique<online::TraceWriter>(*stream, s));
      trace_streams_.push_back(std::move(stream));
      sharded_->engine(s).set_trace(trace_writers_[static_cast<std::size_t>(s)]
                                        .get());
    }
    sharded_->set_wal_hook(hook);
  }
}

ServerCore::~ServerCore() = default;

double ServerCore::now() const {
  return single_ ? single_->now() : sharded_->now();
}

double ServerCore::clamp_time(double t) const {
  const double n = now();
  return t > n ? t : n;
}

std::string ServerCore::wal_path() const { return config_.state_dir + "/wal"; }
std::string ServerCore::snapshot_path() const {
  return config_.state_dir + "/snapshot";
}

// --- durability ------------------------------------------------------------

void ServerCore::stage(const proto::Request& effective) {
  staged_payload_ = proto::encode(effective);
}

void ServerCore::wal_hook_fired() {
  if (staged_payload_.empty()) return;  // cancel pre-logged, or no staging
  if (replaying_ || !wal_.is_open()) {
    staged_payload_.clear();
    return;
  }
  const std::uint64_t rid = next_rid_;
  staged_lsn_ = wal_.append(rid, staged_payload_);
  next_rid_ = rid + 1;
  ++records_since_snapshot_;
  staged_payload_.clear();
}

void ServerCore::sync(std::uint64_t lsn) {
  if (lsn > 0 && wal_.is_open()) wal_.sync_to(lsn);
}

void ServerCore::recover() {
  RESCHED_CHECK(!recovered_, "srv: recover() called twice");
  recovered_ = true;
  if (config_.state_dir.empty()) return;

  if (::mkdir(config_.state_dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw Error("srv: cannot create state dir '" + config_.state_dir +
                "': " + std::strerror(errno));

  if (file_exists(snapshot_path())) {
    RESCHED_CHECK(config_.shards == 1,
                  "srv: snapshot found but the server is sharded");
    std::ifstream in(snapshot_path(), std::ios::binary);
    load_snapshot(in);
  }

  const WalHeader header{1, static_cast<std::uint32_t>(config_.service.capacity),
                         static_cast<std::uint32_t>(config_.shards)};
  if (file_exists(wal_path())) {
    const WalScan scan = read_wal(wal_path());
    RESCHED_CHECK(scan.header.capacity == header.capacity &&
                      scan.header.shards == header.shards,
                  "srv: WAL written for a different server config");
    replaying_ = true;
    for (const WalRecord& record : scan.records) {
      if (record.rid < next_rid_) continue;  // the snapshot already covers it
      apply(proto::decode_request(record.payload));
      next_rid_ = record.rid + 1;
    }
    replaying_ = false;
  }
  wal_.open(wal_path(), header, config_.wal_sync);
}

void ServerCore::maybe_snapshot() {
  if (config_.snapshot_every == 0 || !wal_.is_open()) return;
  if (records_since_snapshot_ < config_.snapshot_every) return;
  write_snapshot();
}

void ServerCore::write_snapshot() {
  using namespace ft::wire;
  const std::string tmp = snapshot_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    RESCHED_CHECK(out.good(), "srv: cannot write snapshot: " + tmp);
    put_bytes(out, kSnapshotMagic, sizeof kSnapshotMagic);
    put_u32(out, 1);  // envelope version
    put_u32(out, static_cast<std::uint32_t>(config_.service.capacity));
    put_u32(out, static_cast<std::uint32_t>(config_.shards));
    put_u64(out, next_rid_);
    put_i32(out, next_internal_);
    put_i32(out, tallies_.submitted);
    put_i32(out, tallies_.accepted);
    put_i32(out, tallies_.offered);
    put_i32(out, tallies_.rejected);
    put_i32(out, tallies_.cancelled);
    put_u64(out, jobs_.size());
    for (const auto& [client_id, record] : jobs_) {
      put_i32(out, client_id);
      put_i32(out, record.internal_id);
      put_u8(out, static_cast<std::uint8_t>(record.state));
      put_f64(out, record.offer);
      put_f64(out, record.start);
      put_f64(out, record.finish);
      put_bool(out, record.dag.has_value());
      if (record.dag) put_dag(out, *record.dag);
    }
    // The full JSONL trace so far: the recovered daemon keeps appending to
    // it, and finalize() writes the seamless whole.
    put_string(out, trace_streams_[0]->str());
    ft::save_checkpoint(out, *single_);
    RESCHED_CHECK(out.good(), "srv: snapshot write failed");
  }
  fsync_path(tmp);
  RESCHED_CHECK(std::rename(tmp.c_str(), snapshot_path().c_str()) == 0,
                "srv: snapshot rename failed");
  fsync_path(config_.state_dir);
  // A crash before this truncation replays rid >= next_rid_ only — the
  // snapshot's rid watermark makes the overlap idempotent.
  wal_.truncate_records();
  records_since_snapshot_ = 0;
  OBS_COUNT("srv.snapshots", 1);
}

void ServerCore::load_snapshot(std::istream& in) {
  using namespace ft::wire;
  char magic[4];
  get_bytes(in, magic, sizeof magic);
  RESCHED_CHECK(std::memcmp(magic, kSnapshotMagic, sizeof magic) == 0,
                "srv: bad snapshot magic");
  RESCHED_CHECK(get_u32(in) == 1, "srv: unsupported snapshot version");
  RESCHED_CHECK(get_u32(in) ==
                    static_cast<std::uint32_t>(config_.service.capacity),
                "srv: snapshot capacity mismatch");
  RESCHED_CHECK(get_u32(in) == static_cast<std::uint32_t>(config_.shards),
                "srv: snapshot shard-count mismatch");
  next_rid_ = get_u64(in);
  next_internal_ = get_i32(in);
  tallies_.submitted = get_i32(in);
  tallies_.accepted = get_i32(in);
  tallies_.offered = get_i32(in);
  tallies_.rejected = get_i32(in);
  tallies_.cancelled = get_i32(in);
  const std::uint64_t n_jobs = get_u64(in);
  jobs_.clear();
  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    const int client_id = get_i32(in);
    JobRecord record;
    record.internal_id = get_i32(in);
    record.state = static_cast<JobRecord::State>(get_u8(in));
    record.offer = get_f64(in);
    record.start = get_f64(in);
    record.finish = get_f64(in);
    if (get_bool(in)) record.dag = get_dag(in);
    jobs_.emplace(client_id, std::move(record));
  }
  *trace_streams_[0] << get_string(in);
  ft::load_checkpoint(in, *single_);
}

// --- engine dispatch -------------------------------------------------------

void ServerCore::engine_submit(online::JobSubmission job) {
  if (single_)
    single_->submit(std::move(job));
  else
    sharded_->submit(std::move(job));
}

bool ServerCore::engine_cancel(double t, int job_id) {
  return single_ ? single_->cancel_job(t, job_id)
                 : sharded_->cancel_job(t, job_id);
}

void ServerCore::engine_run_until(double t) {
  if (single_)
    single_->run_until(t);
  else
    sharded_->run_until(t);
}

bool ServerCore::engine_live(int internal_id) const {
  if (single_) return single_->live_jobs().count(internal_id) > 0;
  for (int s = 0; s < config_.shards; ++s)
    if (sharded_->engine(s).live_jobs().count(internal_id) > 0) return true;
  return false;
}

const online::JobOutcome* ServerCore::find_outcome(int internal_id) const {
  const auto scan =
      [internal_id](
          const std::vector<online::JobOutcome>& outs) -> const online::JobOutcome* {
    for (auto it = outs.rbegin(); it != outs.rend(); ++it)
      if (it->job_id == internal_id) return &*it;
    return nullptr;
  };
  if (single_) return scan(single_->outcomes());
  for (int s = 0; s < config_.shards; ++s)
    if (const online::JobOutcome* o = scan(sharded_->engine(s).outcomes()))
      return o;
  return nullptr;
}

// --- request application ---------------------------------------------------

proto::Response ServerCore::apply(const proto::Request& request,
                                  std::uint64_t* wal_lsn) {
  staged_lsn_ = 0;
  staged_payload_.clear();
  proto::Response response;
  response.offer = kNaN;
  response.start = kNaN;
  response.finish = kNaN;
  response.job_id = request.job_id;
  try {
    switch (request.verb) {
      case proto::Verb::kSubmit: response = apply_submit(request); break;
      case proto::Verb::kStatus: response = apply_status(request); break;
      case proto::Verb::kCancel: response = apply_cancel(request); break;
      case proto::Verb::kCounterOfferAccept:
        response = apply_accept(request);
        break;
      case proto::Verb::kShutdown: response = apply_shutdown(request); break;
    }
  } catch (const std::exception& e) {
    response.ok = false;
    response.error = e.what();
    response.state = "error";
    response.offer = kNaN;
    response.start = kNaN;
    response.finish = kNaN;
    response.stats.reset();
  }
  response.now = now();
  if (wal_lsn != nullptr) *wal_lsn = staged_lsn_;
  staged_payload_.clear();
  if (!replaying_) maybe_snapshot();
  return response;
}

std::uint64_t ServerCore::apply_batch(
    const std::vector<proto::Request>& requests,
    std::vector<proto::Response>& responses) {
  const BatchHints hints = prime_floor_hints(requests);
  std::uint64_t max_lsn = 0;
  responses.reserve(responses.size() + requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!hints.floors.empty() && hints.floors[i].has_value())
      single_->hint_admission_floor(*hints.floors[i], hints.epoch);
    std::uint64_t lsn = 0;
    responses.push_back(apply(requests[i], &lsn));
    // A request that failed before the engine consumed its hint (duplicate
    // job id, invalid dag) must not leak the hint onto the next admission.
    if (!hints.floors.empty()) single_->clear_admission_floor_hint();
    if (lsn > max_lsn) max_lsn = lsn;
  }
  return max_lsn;
}

ServerCore::BatchHints ServerCore::prime_floor_hints(
    const std::vector<proto::Request>& requests) {
  BatchHints hints;
  // Hints only pay off when a flush carries several deadline submits: a
  // lone admission refreshes the engine's own snapshot exactly once either
  // way. Sharded mode routes before any engine is known, and recovery
  // replay must not touch scratch state.
  if (!single_ || replaying_ || requests.size() < 2) return hints;

  // Each floor is evaluated at max(request time, now) — a LOWER bound on
  // the request's true effective time (earlier requests in the burst can
  // only push the stream clock further up). earliest_fit is monotone in
  // not_before, so a floor computed at an earlier time lower-bounds the
  // floor the engine would compute live, which is exactly what the
  // engine's hint guard requires (see hint_admission_floor).
  const double now0 = single_->now();
  batch_queries_.clear();
  struct Slot {
    std::size_t index;  ///< position in `requests`
    std::size_t begin;  ///< query-slice bounds in batch_queries_
    std::size_t end;
    double eff;
  };
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const proto::Request& req = requests[i];
    if (req.verb != proto::Verb::kSubmit || !req.dag.has_value() ||
        !req.deadline.has_value())
      continue;
    const double eff = req.time > now0 ? req.time : now0;
    const std::size_t begin = batch_queries_.size();
    core::finish_floor_queries(*req.dag, config_.service.capacity, eff,
                               job_floor_queries_);
    batch_queries_.insert(batch_queries_.end(), job_floor_queries_.begin(),
                          job_floor_queries_.end());
    slots.push_back({i, begin, batch_queries_.size(), eff});
  }
  if (slots.size() < 2) {
    batch_queries_.clear();
    return hints;
  }

  batch_snapshot_.refresh(single_->profile());
  hints.epoch = single_->profile().epoch();
  batch_snapshot_.fit_many_into(batch_queries_, batch_fits_);
  hints.floors.assign(requests.size(), std::nullopt);
  const std::span<const resv::FitQuery> queries(batch_queries_);
  const std::span<const std::optional<double>> fits(batch_fits_);
  for (const Slot& slot : slots)
    hints.floors[slot.index] = core::finish_floor_from_fits(
        queries.subspan(slot.begin, slot.end - slot.begin),
        fits.subspan(slot.begin, slot.end - slot.begin), slot.eff);
  OBS_COUNT("srv.batch.floor_hints", slots.size());
  return hints;
}

proto::Response ServerCore::admit(const proto::Request& effective,
                                  JobRecord& record) {
  stage(effective);
  const int internal_id = next_internal_;
  // Engine validation happens inside submit(); on a throw nothing was
  // logged and the internal id is not consumed, so the id sequence stays a
  // pure function of the WAL — replay allocates identically.
  engine_submit(online::JobSubmission{internal_id, effective.time,
                                      *effective.dag, effective.deadline});
  ++next_internal_;
  engine_run_until(effective.time);
  ++tallies_.submitted;

  record.internal_id = internal_id;
  record.offer = kNaN;
  record.start = kNaN;
  record.finish = kNaN;
  record.dag.reset();

  proto::Response response;
  response.job_id = effective.job_id;
  response.offer = kNaN;
  response.start = kNaN;
  response.finish = kNaN;

  const online::JobOutcome* outcome = find_outcome(internal_id);
  // No outcome = the sharded router rejected without an engine attempt
  // (every shard over its queue cap); treat as a plain rejection.
  const online::Decision decision =
      outcome != nullptr ? outcome->decision : online::Decision::kRejected;
  RESCHED_ASSERT(decision != online::Decision::kCounterOffered,
                 "daemon engines run kRejectInfeasible");

  if (decision == online::Decision::kAccepted) {
    record.state = JobRecord::State::kAccepted;
    record.start = outcome->start;
    record.finish = outcome->finish;
    ++tallies_.accepted;
    response.state = "accepted";
    response.start = record.start;
    response.finish = record.finish;
    return response;
  }

  // Rejected. Client-driven negotiation: quote the tightest feasible
  // deadline (single-engine mode; the §5.3 search is per-calendar, so a
  // sharded daemon just rejects) and hold the offer open.
  double offer = kNaN;
  if (single_ && effective.deadline.has_value()) {
    const double t = now();
    const int q_hist = resv::historical_average_available(
        single_->profile(), t, config_.service.history_window);
    const core::TightestDeadlineResult tight = core::tightest_deadline(
        *effective.dag, single_->profile(), t, q_hist,
        config_.service.deadline, config_.service.tightest);
    if (tight.at_deadline.feasible && tight.deadline > effective.time)
      offer = tight.deadline;
  }
  if (std::isfinite(offer)) {
    record.state = JobRecord::State::kOffered;
    record.offer = offer;
    record.dag = *effective.dag;
    ++tallies_.offered;
    response.state = "offered";
    response.offer = offer;
  } else {
    record.state = JobRecord::State::kRejected;
    ++tallies_.rejected;
    response.state = "rejected";
  }
  return response;
}

proto::Response ServerCore::apply_submit(const proto::Request& request) {
  RESCHED_CHECK(request.dag.has_value(), "srv: submit carries no dag");
  RESCHED_CHECK(jobs_.find(request.job_id) == jobs_.end(),
                "srv: job id already known");
  proto::Request effective = request;
  effective.time = clamp_time(request.time);
  JobRecord record;
  proto::Response response = admit(effective, record);
  jobs_.emplace(request.job_id, std::move(record));
  return response;
}

proto::Response ServerCore::apply_accept(const proto::Request& request) {
  const auto it = jobs_.find(request.job_id);
  RESCHED_CHECK(it != jobs_.end(), "srv: unknown job");
  JobRecord& record = it->second;
  RESCHED_CHECK(record.state == JobRecord::State::kOffered &&
                    std::isfinite(record.offer) && record.dag.has_value(),
                "srv: no open counter-offer for this job");
  proto::Request effective = request;
  effective.time = clamp_time(request.time);
  // Stamp the accepted deadline into the logged record: replay takes it
  // from the WAL rather than re-deriving the negotiation.
  effective.deadline =
      request.deadline.has_value() ? request.deadline : std::optional<double>(record.offer);
  effective.dag = record.dag;  // never on the wire; admit() schedules it
  return admit(effective, record);
}

proto::Response ServerCore::apply_cancel(const proto::Request& request) {
  const auto it = jobs_.find(request.job_id);
  RESCHED_CHECK(it != jobs_.end(), "srv: unknown job");
  JobRecord& record = it->second;
  RESCHED_CHECK(record.state == JobRecord::State::kAccepted ||
                    record.state == JobRecord::State::kCancelled,
                "srv: job is not cancellable");

  proto::Response response;
  response.job_id = request.job_id;
  response.offer = kNaN;
  response.start = kNaN;
  response.finish = kNaN;
  if (record.state == JobRecord::State::kCancelled) {
    response.ok = false;
    response.error = "job already cancelled";
    response.state = "cancelled";
    return response;
  }

  proto::Request effective = request;
  effective.time = clamp_time(request.time);
  // Cancels are logged unconditionally, even when they miss: a miss still
  // advances the stream clock (the engine drains events up to t before
  // looking for the job), and that advancement must replay.
  stage(effective);
  wal_hook_fired();
  const bool was_live = engine_cancel(effective.time, record.internal_id);
  if (!was_live) {
    response.ok = false;
    response.error = "job already finished";
    response.state = "done";
    response.start = record.start;
    response.finish = record.finish;
    return response;
  }
  record.state = JobRecord::State::kCancelled;
  ++tallies_.cancelled;
  response.state = "cancelled";
  response.start = record.start;
  return response;
}

proto::Response ServerCore::apply_status(const proto::Request& request) {
  proto::Response response;
  response.job_id = request.job_id;
  response.offer = kNaN;
  response.start = kNaN;
  response.finish = kNaN;
  if (request.job_id < 0) {
    response.state = "ok";
    response.stats = stats();
    return response;
  }
  const auto it = jobs_.find(request.job_id);
  if (it == jobs_.end()) {
    response.state = "unknown";
    return response;
  }
  const JobRecord& record = it->second;
  switch (record.state) {
    case JobRecord::State::kAccepted:
      response.state = engine_live(record.internal_id) ? "accepted" : "done";
      response.start = record.start;
      response.finish = record.finish;
      break;
    case JobRecord::State::kOffered:
      response.state = "offered";
      response.offer = record.offer;
      break;
    case JobRecord::State::kRejected:
      response.state = "rejected";
      break;
    case JobRecord::State::kCancelled:
      response.state = "cancelled";
      response.start = record.start;
      break;
  }
  return response;
}

proto::Response ServerCore::apply_shutdown(const proto::Request& request) {
  stopping_ = true;
  proto::Response response;
  response.job_id = request.job_id;
  response.offer = kNaN;
  response.start = kNaN;
  response.finish = kNaN;
  response.state = "ok";
  response.stats = stats();
  return response;
}

proto::ServerStats ServerCore::stats() const {
  proto::ServerStats s;
  s.now = now();
  s.events = single_ ? single_->events_processed() : sharded_->events_processed();
  s.submitted = tallies_.submitted;
  s.accepted = tallies_.accepted;
  s.offered = tallies_.offered;
  s.rejected = tallies_.rejected;
  s.cancelled = tallies_.cancelled;
  s.wal_records = wal_records();
  s.shards = config_.shards;
  return s;
}

// --- shutdown artifacts ----------------------------------------------------

void ServerCore::finalize() {
  if (config_.state_dir.empty()) return;

  {
    std::ofstream out(config_.state_dir + "/trace.jsonl",
                      std::ios::binary | std::ios::trunc);
    RESCHED_CHECK(out.good(), "srv: cannot write trace.jsonl");
    if (single_) {
      out << trace_streams_[0]->str();
    } else {
      std::vector<std::vector<online::TraceRecord>> per_shard;
      per_shard.reserve(trace_streams_.size());
      for (const auto& stream : trace_streams_) {
        std::istringstream in(stream->str());
        per_shard.push_back(online::read_trace(in));
      }
      for (const online::TraceRecord& record :
           online::merge_traces(std::move(per_shard)))
        out << online::to_json_line(record) << '\n';
    }
    RESCHED_CHECK(out.good(), "srv: trace.jsonl write failed");
  }

  {
    std::ofstream out(config_.state_dir + "/calendar.tsv",
                      std::ios::binary | std::ios::trunc);
    RESCHED_CHECK(out.good(), "srv: cannot write calendar.tsv");
    const auto dump = [&out](int shard_id,
                             const resv::AvailabilityProfile& profile) {
      for (const auto& [t, procs] : profile.canonical_steps())
        out << shard_id << '\t' << online::format_double(t) << '\t' << procs
            << '\n';
    };
    if (single_) {
      dump(0, single_->profile());
    } else {
      for (int s = 0; s < config_.shards; ++s) dump(s, sharded_->calendar(s));
    }
    RESCHED_CHECK(out.good(), "srv: calendar.tsv write failed");
  }
}

}  // namespace resched::srv
