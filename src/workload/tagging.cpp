#include "src/workload/tagging.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/error.hpp"

namespace resched::workload {

namespace {
constexpr double kDay = 86400.0;

resv::Reservation to_reservation(const Job& job) {
  return {.start = job.start, .end = job.end(), .procs = job.procs};
}

/// Reshapes future reservations so the count per day over [now, now+horizon]
/// follows `target_fraction(k)` (fraction of the day-0 rate in day k >= 1),
/// by thinning over-full days and cloning (with intra-day jitter) under-full
/// ones. Day 0 is the reference and is left untouched.
resv::ReservationList reshape(const resv::ReservationList& future, double now,
                              double horizon, util::Rng& rng,
                              double (*target_fraction)(double k,
                                                        double days)) {
  const double days = horizon / kDay;
  const int num_days = std::max(1, static_cast<int>(std::ceil(days)));
  std::vector<resv::ReservationList> by_day(
      static_cast<std::size_t>(num_days));
  for (const auto& r : future) {
    auto day = static_cast<int>((r.start - now) / kDay);
    if (day >= 0 && day < num_days)
      by_day[static_cast<std::size_t>(day)].push_back(r);
  }

  const double base_rate =
      std::max(1.0, static_cast<double>(by_day[0].size()));
  resv::ReservationList out = by_day[0];
  for (int k = 1; k < num_days; ++k) {
    auto& day_list = by_day[static_cast<std::size_t>(k)];
    double target = base_rate * target_fraction(static_cast<double>(k), days);
    auto have = static_cast<double>(day_list.size());
    if (have > target) {
      // Thin: keep each reservation with probability target / have.
      for (const auto& r : day_list)
        if (rng.bernoulli(target / have)) out.push_back(r);
    } else {
      for (const auto& r : day_list) out.push_back(r);
      // Clone jittered copies from this day (or day 0 when empty) to fill.
      const auto& pool = day_list.empty() ? by_day[0] : day_list;
      if (!pool.empty()) {
        auto deficit = static_cast<int>(std::lround(target - have));
        for (int c = 0; c < deficit; ++c) {
          resv::Reservation r = pool[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
          double dur = r.duration();
          r.start = now + k * kDay + rng.uniform(0.0, kDay);
          r.end = r.start + dur;
          out.push_back(r);
        }
      }
    }
  }
  return out;
}

double linear_fraction(double k, double days) {
  return std::max(0.0, 1.0 - (k + 0.5) / days);
}

double expo_fraction(double k, double days) {
  // Time constant days/3: ~5% of the base rate remains at the horizon.
  return std::exp(-3.0 * (k + 0.5) / days);
}

}  // namespace

const char* to_string(DecayMethod method) {
  switch (method) {
    case DecayMethod::kLinear: return "linear";
    case DecayMethod::kExpo: return "expo";
    case DecayMethod::kReal: return "real";
  }
  return "?";
}

resv::ReservationList make_reservation_schedule(const Log& log, double now,
                                                const TaggingSpec& spec,
                                                util::Rng& rng) {
  RESCHED_CHECK(spec.phi > 0.0 && spec.phi <= 1.0, "phi must be in (0, 1]");
  RESCHED_CHECK(spec.horizon > 0.0 && spec.history >= 0.0,
                "tagging windows must be positive");

  resv::ReservationList past_and_ongoing;
  resv::ReservationList future;
  for (const Job& job : log.jobs) {
    if (!rng.bernoulli(spec.phi)) continue;  // tagging
    if (job.end() <= now - spec.history) continue;
    if (spec.method == DecayMethod::kReal && job.submit > now) continue;
    resv::Reservation r = to_reservation(job);
    if (r.start >= now + spec.horizon) continue;
    r.end = std::min(r.end, now + spec.horizon);
    if (r.start < now)
      past_and_ongoing.push_back(r);
    else
      future.push_back(r);
  }

  resv::ReservationList out = std::move(past_and_ongoing);
  switch (spec.method) {
    case DecayMethod::kReal:
      // The submit-time filter above already shapes the decay.
      out.insert(out.end(), future.begin(), future.end());
      break;
    case DecayMethod::kLinear: {
      auto shaped = reshape(future, now, spec.horizon, rng, linear_fraction);
      out.insert(out.end(), shaped.begin(), shaped.end());
      break;
    }
    case DecayMethod::kExpo: {
      auto shaped = reshape(future, now, spec.horizon, rng, expo_fraction);
      out.insert(out.end(), shaped.begin(), shaped.end());
      break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const resv::Reservation& a, const resv::Reservation& b) {
              return a.start < b.start;
            });
  return out;
}

resv::ReservationList extract_reservations(const Log& log, double now,
                                           double history) {
  resv::ReservationList out;
  for (const Job& job : log.jobs) {
    if (job.submit > now) continue;        // not yet known at `now`
    if (job.end() <= now - history) continue;  // too old to matter
    out.push_back(to_reservation(job));
  }
  std::sort(out.begin(), out.end(),
            [](const resv::Reservation& a, const resv::Reservation& b) {
              return a.start < b.start;
            });
  return out;
}

double random_schedule_time(const Log& log, double margin, util::Rng& rng) {
  RESCHED_CHECK(log.duration > 2.0 * margin,
                "log too short for the requested margin");
  return rng.uniform(margin, log.duration - margin);
}

}  // namespace resched::workload
