#include "src/workload/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/error.hpp"

namespace resched::workload {

namespace {
constexpr double kHour = 3600.0;
constexpr double kDay = 86400.0;

/// Lognormal (mu, sigma) matching a target mean and coefficient of variation.
struct LognormalParams {
  double mu;
  double sigma;
};
LognormalParams lognormal_for(double mean, double cv) {
  double sigma2 = std::log1p(cv * cv);
  return {std::log(mean) - 0.5 * sigma2, std::sqrt(sigma2)};
}

/// E[2^u] for u ~ U(0, b).
double mean_pow2_uniform(double b) {
  if (b <= 0.0) return 1.0;
  return (std::exp2(b) - 1.0) / (b * std::numbers::ln2);
}
}  // namespace

SyntheticLogSpec ctc_sp2_spec() {
  return {.name = "CTC_SP2", .cpus = 430, .duration_days = 11 * 30.0,
          .target_utilization = 0.658, .mean_runtime_hours = 3.20,
          .runtime_cv = 1.8, .mean_wait_hours = 7.49, .max_job_fraction = 0.5};
}

SyntheticLogSpec osc_cluster_spec() {
  return {.name = "OSC_Cluster", .cpus = 57, .duration_days = 22 * 30.0,
          .target_utilization = 0.385, .mean_runtime_hours = 9.33,
          .runtime_cv = 2.2, .mean_wait_hours = 3.02, .max_job_fraction = 0.6};
}

SyntheticLogSpec sdsc_blue_spec() {
  return {.name = "SDSC_BLUE", .cpus = 1152, .duration_days = 32 * 30.0,
          .target_utilization = 0.757, .mean_runtime_hours = 1.18,
          .runtime_cv = 1.6, .mean_wait_hours = 8.90, .max_job_fraction = 0.5};
}

SyntheticLogSpec sdsc_ds_spec() {
  return {.name = "SDSC_DS", .cpus = 224, .duration_days = 13 * 30.0,
          .target_utilization = 0.273, .mean_runtime_hours = 1.52,
          .runtime_cv = 2.0, .mean_wait_hours = 4.41, .max_job_fraction = 0.5};
}

std::array<SyntheticLogSpec, 4> table2_specs() {
  return {ctc_sp2_spec(), osc_cluster_spec(), sdsc_blue_spec(),
          sdsc_ds_spec()};
}

SyntheticLogSpec grid5000_spec() {
  return {.name = "Grid5000", .cpus = 1024, .duration_days = 2.5 * 365.0,
          .target_utilization = 0.40, .mean_runtime_hours = 1.84,
          .runtime_cv = 1.7, .mean_wait_hours = 3.24, .max_job_fraction = 0.4};
}

Log generate_log(const SyntheticLogSpec& spec, util::Rng& rng) {
  RESCHED_CHECK(spec.cpus >= 1, "log spec needs at least one CPU");
  RESCHED_CHECK(spec.duration_days > 0.0, "log spec needs positive duration");
  RESCHED_CHECK(spec.target_utilization > 0.0 &&
                    spec.target_utilization <= 1.0,
                "target utilization must be in (0, 1]");
  RESCHED_CHECK(spec.mean_runtime_hours > 0.0 && spec.runtime_cv >= 0.0 &&
                    spec.mean_wait_hours >= 0.0,
                "log spec distribution parameters must be non-negative");
  RESCHED_CHECK(spec.max_job_fraction > 0.0 && spec.max_job_fraction <= 1.0,
                "max_job_fraction must be in (0, 1]");
  RESCHED_CHECK(spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude < 1.0,
                "diurnal_amplitude must be in [0, 1)");

  Log log;
  log.name = spec.name;
  log.cpus = spec.cpus;
  log.duration = spec.duration_days * kDay;

  const double mean_runtime = spec.mean_runtime_hours * kHour;
  const auto runtime_params = lognormal_for(mean_runtime, spec.runtime_cv);
  const double size_exp_max =
      std::max(0.0, std::log2(spec.max_job_fraction *
                              static_cast<double>(spec.cpus)));
  const double mean_procs = mean_pow2_uniform(size_exp_max);

  // Poisson arrival rate from the utilization identity
  //   util = rate * E[procs] * E[runtime] / cpus.
  const double rate = spec.target_utilization *
                      static_cast<double>(spec.cpus) /
                      (mean_procs * mean_runtime);
  // Diurnal modulation by thinning a homogeneous process at the peak rate:
  // lambda(t) = rate * (1 + A sin(2 pi t / day)), accepted with probability
  // lambda(t) / (rate * (1 + A)). The time-average rate stays `rate`, so
  // the utilization target is preserved.
  const double amplitude = spec.diurnal_amplitude;
  const double peak_rate = rate * (1.0 + amplitude);
  const double mean_interarrival = 1.0 / peak_rate;

  double t = rng.exponential(mean_interarrival);
  while (t < log.duration) {
    double accept = (1.0 + amplitude * std::sin(2.0 * std::numbers::pi * t /
                                                kDay)) /
                    (1.0 + amplitude);
    if (!rng.bernoulli(accept)) {
      t += rng.exponential(mean_interarrival);
      continue;
    }
    Job job;
    job.submit = t;
    job.start = t + rng.exponential(std::max(1.0, spec.mean_wait_hours * kHour));
    job.runtime =
        std::max(60.0, rng.lognormal(runtime_params.mu, runtime_params.sigma));
    int procs = static_cast<int>(
        std::lround(std::exp2(rng.uniform(0.0, size_exp_max))));
    job.procs = std::clamp(procs, 1, spec.cpus);
    log.jobs.push_back(job);
    t += rng.exponential(mean_interarrival);
  }
  return log;
}

}  // namespace resched::workload
