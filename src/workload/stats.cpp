#include "src/workload/stats.hpp"

#include <algorithm>

#include "src/resv/profile.hpp"
#include "src/util/error.hpp"
#include "src/util/stats.hpp"

namespace resched::workload {

namespace {
constexpr double kHour = 3600.0;

/// CV (in percent) of consecutive-batch means of `values`.
double batch_cv_pct(const std::vector<double>& values, int num_batches) {
  if (values.size() < 2) return 0.0;
  int batches = std::min<int>(num_batches, static_cast<int>(values.size()));
  util::Accumulator of_means;
  std::size_t per = values.size() / static_cast<std::size_t>(batches);
  for (int b = 0; b < batches; ++b) {
    util::Accumulator batch;
    std::size_t begin = static_cast<std::size_t>(b) * per;
    std::size_t end = (b == batches - 1) ? values.size() : begin + per;
    for (std::size_t i = begin; i < end; ++i) batch.add(values[i]);
    if (!batch.empty()) of_means.add(batch.mean());
  }
  return 100.0 * of_means.cv();
}
}  // namespace

double Log::utilization() const {
  if (duration <= 0.0 || cpus <= 0) return 0.0;
  double area = 0.0;
  for (const Job& j : jobs) area += static_cast<double>(j.procs) * j.runtime;
  return area / (static_cast<double>(cpus) * duration);
}

LogStats compute_log_stats(const Log& log, int num_batches) {
  RESCHED_CHECK(num_batches >= 1, "need at least one batch");
  LogStats stats;
  stats.name = log.name;
  stats.job_count = log.jobs.size();
  if (log.jobs.empty()) return stats;

  std::vector<double> exec_hours, wait_hours;
  exec_hours.reserve(log.jobs.size());
  wait_hours.reserve(log.jobs.size());
  for (const Job& j : log.jobs) {
    exec_hours.push_back(j.runtime / kHour);
    wait_hours.push_back(j.wait() / kHour);
  }
  stats.avg_exec_hours = util::mean(exec_hours);
  stats.avg_wait_hours = util::mean(wait_hours);
  stats.cv_exec_pct = batch_cv_pct(exec_hours, num_batches);
  stats.cv_wait_pct = batch_cv_pct(wait_hours, num_batches);
  return stats;
}

double reservation_schedule_correlation(const resv::ReservationList& a,
                                        double now_a,
                                        const resv::ReservationList& b,
                                        double now_b, double horizon,
                                        int capacity_a, int capacity_b,
                                        int samples) {
  RESCHED_CHECK(samples >= 2, "need at least two samples");
  RESCHED_CHECK(horizon > 0.0, "horizon must be positive");
  resv::AvailabilityProfile pa(capacity_a, a);
  resv::AvailabilityProfile pb(capacity_b, b);
  double step = horizon / samples;
  // Compare *reserved fractions* so platforms of different sizes align.
  std::vector<double> ra, rb;
  ra.reserve(static_cast<std::size_t>(samples));
  rb.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    double ta = now_a + (static_cast<double>(i) + 0.5) * step;
    double tb = now_b + (static_cast<double>(i) + 0.5) * step;
    ra.push_back(1.0 - static_cast<double>(pa.available_at(ta)) / capacity_a);
    rb.push_back(1.0 - static_cast<double>(pb.available_at(tb)) / capacity_b);
  }
  return util::pearson(ra, rb);
}

}  // namespace resched::workload
