// Standard Workload Format (SWF) reader / writer.
//
// The paper consumes four logs from the Parallel Workloads Archive, which
// are distributed in SWF: one job per line with 18 whitespace-separated
// fields, `;`-prefixed header comments, and -1 marking unknown values.
// This module parses the subset of fields the simulator needs (submit time,
// wait time, run time, allocated processors) into workload::Log and can
// write a Log back out as valid SWF, so real archive logs drop in wherever
// the synthetic generators are used.
#pragma once

#include <iosfwd>
#include <string>

#include "src/workload/log.hpp"

namespace resched::workload {

/// Options controlling SWF parsing.
struct SwfReadOptions {
  /// Jobs with unknown (-1) or zero runtime / processor counts are skipped
  /// when true (they cannot become reservations).
  bool skip_invalid = true;
  /// Platform size override; 0 means "use MaxProcs/MaxNodes from the header,
  /// or the max observed allocation if the header lacks it".
  int cpus_override = 0;
};

/// Parses an SWF stream. Throws resched::Error on malformed numeric fields.
Log read_swf(std::istream& in, const std::string& name,
             const SwfReadOptions& opts = {});

/// Convenience overload reading from a file path.
Log read_swf_file(const std::string& path, const SwfReadOptions& opts = {});

/// Writes the log as SWF (fields the simulator does not track are -1).
void write_swf(std::ostream& out, const Log& log);

}  // namespace resched::workload
