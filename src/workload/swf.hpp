// Standard Workload Format (SWF) reader / writer.
//
// The paper consumes four logs from the Parallel Workloads Archive, which
// are distributed in SWF: one job per line with 18 whitespace-separated
// fields, `;`-prefixed header comments, and -1 marking unknown values.
// This module parses the subset of fields the simulator needs (submit time,
// wait time, run time, allocated processors) into workload::Log and can
// write a Log back out as valid SWF, so real archive logs drop in wherever
// the synthetic generators are used.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/workload/log.hpp"

namespace resched::workload {

/// Per-parse account of lines the reader could not (or chose not to) turn
/// into jobs. Archive logs in the wild carry truncated lines, non-numeric
/// tokens, and bogus negative values; the reader skips those instead of
/// aborting a multi-hundred-thousand-line parse halfway through.
struct SwfDiagnostics {
  /// Structurally bad lines skipped: truncated (< 5 fields), non-numeric
  /// tokens, non-finite values, negative values that are not the -1
  /// "unknown" sentinel, or processor counts outside int range.
  int malformed_lines = 0;
  /// Well-formed lines whose job is unusable (unknown or zero runtime /
  /// processors) and was dropped by SwfReadOptions::skip_invalid.
  int invalid_jobs = 0;
  /// One human-readable message per malformed line, capped at
  /// kMaxMessages (the counter keeps counting past the cap).
  std::vector<std::string> messages;
  static constexpr int kMaxMessages = 32;
};

/// Options controlling SWF parsing.
struct SwfReadOptions {
  /// Jobs with unknown (-1) or zero runtime / processor counts are skipped
  /// when true (they cannot become reservations).
  bool skip_invalid = true;
  /// Platform size override; 0 means "use MaxProcs/MaxNodes from the header,
  /// or the max observed allocation if the header lacks it".
  int cpus_override = 0;
  /// Throw resched::Error on the first malformed line instead of skipping
  /// it with a diagnostic.
  bool strict = false;
  /// Optional sink for skip accounting (borrowed; may be null).
  SwfDiagnostics* diagnostics = nullptr;
};

/// Parses an SWF stream. Malformed lines are skipped with a diagnostic
/// (throws resched::Error instead when opts.strict).
Log read_swf(std::istream& in, const std::string& name,
             const SwfReadOptions& opts = {});

/// Convenience overload reading from a file path.
Log read_swf_file(const std::string& path, const SwfReadOptions& opts = {});

/// Writes the log as SWF (fields the simulator does not track are -1).
void write_swf(std::ostream& out, const Log& log);

}  // namespace resched::workload
