// Standard Workload Format (SWF) reader / writer.
//
// The paper consumes four logs from the Parallel Workloads Archive, which
// are distributed in SWF: one job per line with 18 whitespace-separated
// fields, `;`-prefixed header comments, and -1 marking unknown values.
// This module parses the subset of fields the simulator needs (submit time,
// wait time, run time, allocated processors) into workload::Log and can
// write a Log back out as valid SWF, so real archive logs drop in wherever
// the synthetic generators are used.
#pragma once

#include <iosfwd>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "src/workload/log.hpp"

namespace resched::workload {

/// Per-parse account of lines the reader could not (or chose not to) turn
/// into jobs. Archive logs in the wild carry truncated lines, non-numeric
/// tokens, and bogus negative values; the reader skips those instead of
/// aborting a multi-hundred-thousand-line parse halfway through.
struct SwfDiagnostics {
  /// Structurally bad lines skipped: truncated (< 5 fields), non-numeric
  /// tokens, non-finite values, negative values that are not the -1
  /// "unknown" sentinel, or processor counts outside int range.
  int malformed_lines = 0;
  /// Well-formed lines whose job is unusable (unknown or zero runtime /
  /// processors) and was dropped by SwfReadOptions::skip_invalid.
  int invalid_jobs = 0;
  /// One human-readable message per malformed line, capped at
  /// kMaxMessages (the counter keeps counting past the cap).
  std::vector<std::string> messages;
  static constexpr int kMaxMessages = 32;
};

/// Options controlling SWF parsing.
struct SwfReadOptions {
  /// Jobs with unknown (-1) or zero runtime / processor counts are skipped
  /// when true (they cannot become reservations).
  bool skip_invalid = true;
  /// Platform size override; 0 means "use MaxProcs/MaxNodes from the header,
  /// or the max observed allocation if the header lacks it".
  int cpus_override = 0;
  /// Throw resched::Error on the first malformed line instead of skipping
  /// it with a diagnostic.
  bool strict = false;
  /// Optional sink for skip accounting (borrowed; may be null).
  SwfDiagnostics* diagnostics = nullptr;
};

/// Parses an SWF stream. Malformed lines are skipped with a diagnostic
/// (throws resched::Error instead when opts.strict).
Log read_swf(std::istream& in, const std::string& name,
             const SwfReadOptions& opts = {});

/// Convenience overload reading from a file path.
Log read_swf_file(const std::string& path, const SwfReadOptions& opts = {});

/// Streaming SWF reader: one job per next() call, bounded memory.
///
/// read_swf materializes the whole archive as a vector and sorts it; at
/// multi-month PWA scale (millions of lines) that is hundreds of MB held
/// just to feed a replay that consumes jobs in submit order anyway. This
/// reader keeps only a bounded reorder buffer (a min-heap on submit time)
/// and emits jobs in nondecreasing submit order as long as the archive's
/// disorder distance stays within `reorder_window` lines — real SWF logs
/// are submit-sorted or very nearly so. A job displaced further than the
/// window is handled like a malformed line: skipped with a diagnostic, or
/// resched::Error when opts.strict.
///
/// Line-level semantics (header parsing, field validation, -1 sentinels,
/// skip_invalid, diagnostics) are shared with read_swf.
class SwfStreamReader {
 public:
  static constexpr int kDefaultReorderWindow = 4096;

  /// Borrows `in`; the stream must outlive the reader.
  SwfStreamReader(std::istream& in, std::string name,
                  const SwfReadOptions& opts = {},
                  int reorder_window = kDefaultReorderWindow);

  /// Next job in nondecreasing submit order; nullopt once the stream and
  /// the reorder buffer are both exhausted.
  std::optional<Job> next();

  /// Platform size: cpus_override if set, else the MaxProcs/MaxNodes
  /// header (headers precede jobs, so this is stable after construction
  /// primes the buffer), else the max allocation observed so far, min 1.
  int header_cpus() const;

  /// Jobs emitted by next() so far.
  long long emitted() const { return emitted_; }

 private:
  struct Pending {
    Job job;
    long long seq;  ///< input order, breaks submit ties deterministically
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.job.submit != b.job.submit) return a.job.submit > b.job.submit;
      return a.seq > b.seq;
    }
  };

  /// Parses lines until the reorder buffer holds > reorder_window_ jobs
  /// or the stream is exhausted.
  void refill();

  std::istream& in_;
  std::string name_;
  SwfReadOptions opts_;
  int reorder_window_;
  std::priority_queue<Pending, std::vector<Pending>, Later> buffer_;
  int header_cpus_ = 0;
  int max_alloc_ = 0;
  int lineno_ = 0;
  long long next_seq_ = 0;
  long long emitted_ = 0;
  double last_submit_ = 0.0;
  bool exhausted_ = false;
};

/// Writes the log as SWF (fields the simulator does not track are -1).
void write_swf(std::ostream& out, const Log& log);

}  // namespace resched::workload
