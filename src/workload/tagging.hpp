// Reservation-schedule construction from batch logs (paper §3.2.1).
//
// Following the paper (and [44, 45]), a reservation schedule is synthesized
// from a batch log by tagging a random fraction phi of the jobs as
// "reserved" and discarding the rest. Because such a schedule is stationary
// while a real one should thin out with look-ahead distance from the
// scheduling instant `now`, the tagged schedule is then reshaped by one of
// three methods:
//
//  * linear — reservations-per-day decays linearly to zero at now + horizon;
//  * expo   — reservations-per-day decays exponentially (≈5% left at the
//             horizon);
//  * real   — only reservations whose jobs were *submitted* before `now`
//             are kept, letting the log's own wait-time structure provide
//             the decay.
//
// All three keep reservations already running at `now` untouched and drop
// everything past now + horizon (the paper uses a 7-day horizon).
#pragma once

#include "src/resv/reservation.hpp"
#include "src/util/rng.hpp"
#include "src/workload/log.hpp"

namespace resched::workload {

enum class DecayMethod { kLinear, kExpo, kReal };

const char* to_string(DecayMethod method);

struct TaggingSpec {
  double phi = 0.1;          ///< fraction of jobs tagged as reservations
  DecayMethod method = DecayMethod::kLinear;
  double horizon = 7 * 86400.0;  ///< no reservations beyond now + horizon
  double history = 7 * 86400.0;  ///< past window kept for q estimation
};

/// Builds the reservation schedule visible at scheduling time `now`:
/// reservations overlapping [now - history, now + horizon]. Future
/// reservations (start >= now) are reshaped per `spec.method`; ongoing and
/// past ones keep their original bounds (they only inform the historical
/// availability estimate).
resv::ReservationList make_reservation_schedule(const Log& log, double now,
                                                const TaggingSpec& spec,
                                                util::Rng& rng);

/// Treats *every* job of `log` as an advance reservation and extracts the
/// schedule visible at `now` (used for the Grid'5000 reservation log, where
/// jobs are reservations already): jobs submitted by `now`, overlapping
/// [now - history, infinity).
resv::ReservationList extract_reservations(const Log& log, double now,
                                           double history = 7 * 86400.0);

/// Picks a scheduling instant uniformly inside the log, away from both ends
/// by `margin` seconds so history and look-ahead windows stay in range.
double random_schedule_time(const Log& log, double margin, util::Rng& rng);

}  // namespace resched::workload
