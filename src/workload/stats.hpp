// Log summary statistics (paper Table 3) and reservation-schedule
// correlation (paper §3.2.1 validation study).
#pragma once

#include "src/resv/reservation.hpp"
#include "src/util/rng.hpp"
#include "src/workload/log.hpp"

namespace resched::workload {

/// Table 3 row: averages and coefficients of variation of job execution
/// time and submit-to-start latency ("time to exec"), in hours / percent.
struct LogStats {
  std::string name;
  double avg_exec_hours = 0.0;
  double cv_exec_pct = 0.0;
  double avg_wait_hours = 0.0;
  double cv_wait_pct = 0.0;
  std::size_t job_count = 0;
};

/// Computes Table 3 metrics for a log. The paper reports CVs of *per-sample
/// averages* (its CV values are a few percent); we follow that convention:
/// jobs are split into `num_batches` consecutive batches, and the CV is
/// taken over the batch means.
LogStats compute_log_stats(const Log& log, int num_batches = 50);

/// Pearson correlation between the number of reserved processors over time
/// in two reservation schedules, sampled on a shared grid of `samples`
/// points spanning [now, now + horizon) (paper §3.2.1 correlation study).
double reservation_schedule_correlation(const resv::ReservationList& a,
                                        double now_a,
                                        const resv::ReservationList& b,
                                        double now_b, double horizon,
                                        int capacity_a, int capacity_b,
                                        int samples = 336);

}  // namespace resched::workload
