// In-memory batch job log (paper §3.2.1, Table 2).
//
// A Log is the common currency between the SWF reader, the synthetic log
// generators, and the reservation-schedule construction: a platform size
// plus a list of jobs with submit / start / runtime / processor counts.
#pragma once

#include <string>
#include <vector>

namespace resched::workload {

/// One batch job (or reservation) observed in a log.
struct Job {
  double submit = 0.0;   ///< submission time [seconds since log start]
  double start = 0.0;    ///< execution start time (submit + wait)
  double runtime = 0.0;  ///< execution duration [seconds]
  int procs = 0;         ///< processors used

  double wait() const { return start - submit; }
  double end() const { return start + runtime; }
};

/// A job log for one platform.
struct Log {
  std::string name;
  int cpus = 0;              ///< platform size (Table 2 "#CPUs")
  double duration = 0.0;     ///< log time span [seconds]
  std::vector<Job> jobs;     ///< sorted by submit time

  /// Fraction of the platform's capacity consumed by the logged jobs.
  double utilization() const;
};

}  // namespace resched::workload
