// Synthetic batch-log generation (substitute for the Parallel Workloads
// Archive logs of Table 2 and the Grid'5000 reservation log of §3.2.1).
//
// The paper consumes real logs only through (a) reservation schedules built
// by tagging a fraction of the jobs and (b) the Table 3 summary statistics.
// Each SyntheticLogSpec therefore pins the quantities those two paths
// depend on: platform size, log duration, average utilization, mean job
// runtime, runtime variability, and mean queue wait ("time to exec").
//
//  * arrivals  — Poisson process whose rate is solved from the target
//    utilization: rate = util * cpus / E[procs * runtime];
//  * runtimes  — lognormal with the requested mean and CV;
//  * sizes     — log2-biased (powers of two dominate real logs): procs =
//    round(2^U(0, log2(max_frac * cpus)));
//  * waits     — exponential with the requested mean, independent of load
//    (the simulator never replays queue dynamics, only start times).
#pragma once

#include <array>

#include "src/util/rng.hpp"
#include "src/workload/log.hpp"

namespace resched::workload {

struct SyntheticLogSpec {
  std::string name;
  int cpus = 128;
  double duration_days = 330.0;
  double target_utilization = 0.65;  ///< fraction of capacity
  double mean_runtime_hours = 3.2;   ///< Table 3 "Avg. job exec. time"
  double runtime_cv = 1.8;           ///< realistic heavy-tailed spread
  double mean_wait_hours = 7.5;      ///< Table 3 "Avg. time to exec."
  double max_job_fraction = 0.5;     ///< largest job vs platform size
  /// Daily arrival-rate modulation in [0, 1): 0 = stationary Poisson;
  /// 0.6 means the rate swings +/-60% around its mean over each day, the
  /// day/night pattern every production log exhibits. Implemented by
  /// thinning, so the target utilization is preserved.
  double diurnal_amplitude = 0.5;
};

/// The four batch logs of Table 2, calibrated to the published platform
/// size / duration / utilization and the Table 3 runtime & wait means.
SyntheticLogSpec ctc_sp2_spec();
SyntheticLogSpec osc_cluster_spec();
SyntheticLogSpec sdsc_blue_spec();
SyntheticLogSpec sdsc_ds_spec();
std::array<SyntheticLogSpec, 4> table2_specs();

/// Grid'5000-style *reservation* log (§3.2.1): every job is an advance
/// reservation; runtime/wait match the Grid'5000 row of Table 3.
SyntheticLogSpec grid5000_spec();

/// Generates one log instance. Deterministic given rng state.
Log generate_log(const SyntheticLogSpec& spec, util::Rng& rng);

}  // namespace resched::workload
