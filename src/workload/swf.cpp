#include "src/workload/swf.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/error.hpp"

namespace resched::workload {

namespace {

/// Parses one numeric token; nullopt on non-numeric, trailing garbage,
/// or non-finite values. SWF uses -1 for "unknown".
std::optional<double> parse_field(const std::string& tok) {
  try {
    std::size_t pos = 0;
    double v = std::stod(tok, &pos);
    if (pos != tok.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Extracts "MaxProcs: N" style header values. Values that do not parse
/// or do not fit in a positive int are treated as absent — multi-month
/// archives have been seen with garbage header numbers, and std::atoi's
/// overflow behavior is undefined.
int header_int(const std::string& line, const char* key) {
  auto pos = line.find(key);
  if (pos == std::string::npos) return 0;
  pos = line.find(':', pos);
  if (pos == std::string::npos) return 0;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(line.c_str() + pos + 1, &end, 10);
  if (end == line.c_str() + pos + 1 || errno == ERANGE ||
      v > std::numeric_limits<int>::max() || v < 0)
    return 0;
  return static_cast<int>(v);
}

/// Parses one SWF line shared by read_swf and SwfStreamReader: header
/// comments update `header_cpus` in place; data lines return a Job, or
/// nullopt for blank / comment / malformed / skip_invalid-dropped lines
/// (diagnostics recorded per `opts`; throws resched::Error when
/// opts.strict and the line is malformed).
std::optional<Job> parse_swf_line(const std::string& line, int lineno,
                                  const std::string& name,
                                  const SwfReadOptions& opts,
                                  int& header_cpus) {
  if (line.empty()) return std::nullopt;
  if (line[0] == ';') {
    if (int v = header_int(line, "MaxProcs"); v > 0) header_cpus = v;
    else if (int w = header_int(line, "MaxNodes"); w > 0 && header_cpus == 0)
      header_cpus = w;
    return std::nullopt;
  }
  std::istringstream fields(line);
  std::vector<std::string> toks;
  std::string tok;
  while (fields >> tok) toks.push_back(tok);
  if (toks.empty()) return std::nullopt;

  const std::string ctx = name + ":" + std::to_string(lineno);
  auto malformed = [&](const std::string& what) {
    if (opts.strict) throw Error(what + " in " + ctx);
    if (opts.diagnostics != nullptr) {
      SwfDiagnostics& d = *opts.diagnostics;
      ++d.malformed_lines;
      if (static_cast<int>(d.messages.size()) < SwfDiagnostics::kMaxMessages)
        d.messages.push_back(what + " in " + ctx);
    }
  };

  // Field layout: 1 job id, 2 submit, 3 wait, 4 runtime, 5 allocated procs.
  if (toks.size() < 5) {
    malformed("truncated SWF line (" + std::to_string(toks.size()) +
              " of 5 required fields)");
    return std::nullopt;
  }
  std::optional<double> vals[4];
  for (int f = 0; f < 4; ++f) {
    vals[f] = parse_field(toks[static_cast<std::size_t>(f) + 1]);
    if (!vals[f]) {
      malformed("malformed SWF field '" +
                toks[static_cast<std::size_t>(f) + 1] + "'");
      return std::nullopt;
    }
  }
  const double submit = *vals[0];
  const double wait = *vals[1];
  const double runtime = *vals[2];
  const double procs_raw = *vals[3];
  // -1 is SWF's "unknown" sentinel; any other negative value is garbage.
  if ((runtime < 0.0 && runtime != -1.0) ||
      (submit < 0.0 && submit != -1.0) || (wait < 0.0 && wait != -1.0) ||
      (procs_raw < 0.0 && procs_raw != -1.0)) {
    malformed("negative SWF value that is not the -1 unknown sentinel");
    return std::nullopt;
  }
  if (procs_raw > 1e9) {
    malformed("SWF processor count '" + toks[4] + "' out of range");
    return std::nullopt;
  }
  const int procs = static_cast<int>(procs_raw);

  if (opts.skip_invalid && (runtime <= 0.0 || procs <= 0 || submit < 0.0)) {
    if (opts.diagnostics != nullptr) ++opts.diagnostics->invalid_jobs;
    return std::nullopt;
  }
  Job job;
  job.submit = submit;
  job.start = submit + std::max(0.0, wait);
  job.runtime = runtime;
  job.procs = procs;
  return job;
}

}  // namespace

Log read_swf(std::istream& in, const std::string& name,
             const SwfReadOptions& opts) {
  Log log;
  log.name = name;
  int header_cpus = 0;
  double max_end = 0.0;
  int max_alloc = 0;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::optional<Job> job = parse_swf_line(line, lineno, name, opts, header_cpus);
    if (!job) continue;
    log.jobs.push_back(*job);
    max_end = std::max(max_end, job->end());
    max_alloc = std::max(max_alloc, job->procs);
  }

  log.cpus = opts.cpus_override > 0  ? opts.cpus_override
             : header_cpus > 0       ? header_cpus
                                     : std::max(1, max_alloc);
  log.duration = max_end;
  std::sort(log.jobs.begin(), log.jobs.end(),
            [](const Job& a, const Job& b) { return a.submit < b.submit; });
  return log;
}

SwfStreamReader::SwfStreamReader(std::istream& in, std::string name,
                                 const SwfReadOptions& opts,
                                 int reorder_window)
    : in_(in),
      name_(std::move(name)),
      opts_(opts),
      reorder_window_(std::max(0, reorder_window)) {
  // Prime the buffer so header_cpus() is meaningful before the first
  // next(): SWF headers precede all data lines.
  refill();
}

void SwfStreamReader::refill() {
  std::string line;
  while (!exhausted_ &&
         static_cast<long long>(buffer_.size()) <= reorder_window_) {
    if (!std::getline(in_, line)) {
      exhausted_ = true;
      break;
    }
    ++lineno_;
    std::optional<Job> job =
        parse_swf_line(line, lineno_, name_, opts_, header_cpus_);
    if (!job) continue;
    max_alloc_ = std::max(max_alloc_, job->procs);
    buffer_.push(Pending{*job, next_seq_++});
  }
}

std::optional<Job> SwfStreamReader::next() {
  for (;;) {
    refill();
    if (buffer_.empty()) return std::nullopt;
    Job job = buffer_.top().job;
    buffer_.pop();
    if (emitted_ > 0 && job.submit < last_submit_) {
      // The job surfaced after a later-submitted one already left the
      // buffer: its displacement exceeds the reorder window. Mirror the
      // malformed-line contract rather than emitting out of order.
      const std::string what =
          "SWF job at submit " + std::to_string(job.submit) +
          " out of order beyond the reorder window (last emitted " +
          std::to_string(last_submit_) + ")";
      if (opts_.strict) throw Error(what + " in " + name_);
      if (opts_.diagnostics != nullptr) {
        SwfDiagnostics& d = *opts_.diagnostics;
        ++d.malformed_lines;
        if (static_cast<int>(d.messages.size()) < SwfDiagnostics::kMaxMessages)
          d.messages.push_back(what + " in " + name_);
      }
      continue;
    }
    last_submit_ = job.submit;
    ++emitted_;
    return job;
  }
}

int SwfStreamReader::header_cpus() const {
  return opts_.cpus_override > 0  ? opts_.cpus_override
         : header_cpus_ > 0       ? header_cpus_
                                  : std::max(1, max_alloc_);
}

Log read_swf_file(const std::string& path, const SwfReadOptions& opts) {
  std::ifstream in(path);
  RESCHED_CHECK(in.good(), "cannot open SWF file: " + path);
  return read_swf(in, path, opts);
}

void write_swf(std::ostream& out, const Log& log) {
  out << "; SWF written by resched\n";
  out << "; MaxProcs: " << log.cpus << "\n";
  // Times are seconds as doubles; default stream precision (6 significant
  // digits) would truncate multi-month timestamps.
  out.precision(15);
  int id = 1;
  for (const Job& j : log.jobs) {
    out << id++ << ' ' << j.submit << ' ' << j.wait() << ' ' << j.runtime
        << ' ' << j.procs << " -1 -1 " << j.procs
        << " -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
}

}  // namespace resched::workload
