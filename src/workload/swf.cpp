#include "src/workload/swf.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/error.hpp"

namespace resched::workload {

namespace {

/// Parses one numeric token; SWF uses -1 for "unknown".
double parse_field(const std::string& tok, const std::string& context) {
  try {
    std::size_t pos = 0;
    double v = std::stod(tok, &pos);
    RESCHED_CHECK(pos == tok.size(), "trailing characters in SWF field");
    return v;
  } catch (const std::exception&) {
    throw Error("malformed SWF field '" + tok + "' in " + context);
  }
}

/// Extracts "MaxProcs: N" style header values (case-insensitive key match).
int header_int(const std::string& line, const char* key) {
  auto pos = line.find(key);
  if (pos == std::string::npos) return 0;
  pos = line.find(':', pos);
  if (pos == std::string::npos) return 0;
  return std::atoi(line.c_str() + pos + 1);
}

}  // namespace

Log read_swf(std::istream& in, const std::string& name,
             const SwfReadOptions& opts) {
  Log log;
  log.name = name;
  int header_cpus = 0;
  double max_end = 0.0;
  int max_alloc = 0;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == ';') {
      if (int v = header_int(line, "MaxProcs"); v > 0) header_cpus = v;
      else if (int w = header_int(line, "MaxNodes"); w > 0 && header_cpus == 0)
        header_cpus = w;
      continue;
    }
    std::istringstream fields(line);
    std::vector<std::string> toks;
    std::string tok;
    while (fields >> tok) toks.push_back(tok);
    if (toks.empty()) continue;
    RESCHED_CHECK(toks.size() >= 5,
                  "SWF line " + std::to_string(lineno) + " has too few fields");

    std::string ctx = name + ":" + std::to_string(lineno);
    // Field layout: 1 job id, 2 submit, 3 wait, 4 runtime, 5 allocated procs.
    double submit = parse_field(toks[1], ctx);
    double wait = parse_field(toks[2], ctx);
    double runtime = parse_field(toks[3], ctx);
    int procs = static_cast<int>(parse_field(toks[4], ctx));

    if (opts.skip_invalid && (runtime <= 0.0 || procs <= 0 || submit < 0.0))
      continue;
    Job job;
    job.submit = submit;
    job.start = submit + std::max(0.0, wait);
    job.runtime = runtime;
    job.procs = procs;
    log.jobs.push_back(job);
    max_end = std::max(max_end, job.end());
    max_alloc = std::max(max_alloc, procs);
  }

  log.cpus = opts.cpus_override > 0  ? opts.cpus_override
             : header_cpus > 0       ? header_cpus
                                     : std::max(1, max_alloc);
  log.duration = max_end;
  std::sort(log.jobs.begin(), log.jobs.end(),
            [](const Job& a, const Job& b) { return a.submit < b.submit; });
  return log;
}

Log read_swf_file(const std::string& path, const SwfReadOptions& opts) {
  std::ifstream in(path);
  RESCHED_CHECK(in.good(), "cannot open SWF file: " + path);
  return read_swf(in, path, opts);
}

void write_swf(std::ostream& out, const Log& log) {
  out << "; SWF written by resched\n";
  out << "; MaxProcs: " << log.cpus << "\n";
  // Times are seconds as doubles; default stream precision (6 significant
  // digits) would truncate multi-month timestamps.
  out.precision(15);
  int id = 1;
  for (const Job& j : log.jobs) {
    out << id++ << ' ' << j.submit << ' ' << j.wait() << ' ' << j.runtime
        << ' ' << j.procs << " -1 -1 " << j.procs
        << " -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
}

}  // namespace resched::workload
