#include "src/workload/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/error.hpp"

namespace resched::workload {

namespace {

/// Parses one numeric token; nullopt on non-numeric, trailing garbage,
/// or non-finite values. SWF uses -1 for "unknown".
std::optional<double> parse_field(const std::string& tok) {
  try {
    std::size_t pos = 0;
    double v = std::stod(tok, &pos);
    if (pos != tok.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Extracts "MaxProcs: N" style header values (case-insensitive key match).
int header_int(const std::string& line, const char* key) {
  auto pos = line.find(key);
  if (pos == std::string::npos) return 0;
  pos = line.find(':', pos);
  if (pos == std::string::npos) return 0;
  return std::atoi(line.c_str() + pos + 1);
}

}  // namespace

Log read_swf(std::istream& in, const std::string& name,
             const SwfReadOptions& opts) {
  Log log;
  log.name = name;
  int header_cpus = 0;
  double max_end = 0.0;
  int max_alloc = 0;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == ';') {
      if (int v = header_int(line, "MaxProcs"); v > 0) header_cpus = v;
      else if (int w = header_int(line, "MaxNodes"); w > 0 && header_cpus == 0)
        header_cpus = w;
      continue;
    }
    std::istringstream fields(line);
    std::vector<std::string> toks;
    std::string tok;
    while (fields >> tok) toks.push_back(tok);
    if (toks.empty()) continue;

    const std::string ctx = name + ":" + std::to_string(lineno);
    auto malformed = [&](const std::string& what) {
      if (opts.strict) throw Error(what + " in " + ctx);
      if (opts.diagnostics != nullptr) {
        SwfDiagnostics& d = *opts.diagnostics;
        ++d.malformed_lines;
        if (static_cast<int>(d.messages.size()) < SwfDiagnostics::kMaxMessages)
          d.messages.push_back(what + " in " + ctx);
      }
    };

    // Field layout: 1 job id, 2 submit, 3 wait, 4 runtime, 5 allocated procs.
    if (toks.size() < 5) {
      malformed("truncated SWF line (" + std::to_string(toks.size()) +
                " of 5 required fields)");
      continue;
    }
    std::optional<double> vals[4];
    bool bad = false;
    for (int f = 0; f < 4 && !bad; ++f) {
      vals[f] = parse_field(toks[static_cast<std::size_t>(f) + 1]);
      if (!vals[f]) {
        malformed("malformed SWF field '" + toks[static_cast<std::size_t>(f) + 1] +
                  "'");
        bad = true;
      }
    }
    if (bad) continue;
    const double submit = *vals[0];
    const double wait = *vals[1];
    const double runtime = *vals[2];
    const double procs_raw = *vals[3];
    // -1 is SWF's "unknown" sentinel; any other negative value is garbage.
    if ((runtime < 0.0 && runtime != -1.0) ||
        (submit < 0.0 && submit != -1.0) || (wait < 0.0 && wait != -1.0) ||
        (procs_raw < 0.0 && procs_raw != -1.0)) {
      malformed("negative SWF value that is not the -1 unknown sentinel");
      continue;
    }
    if (procs_raw > 1e9) {
      malformed("SWF processor count '" + toks[4] + "' out of range");
      continue;
    }
    const int procs = static_cast<int>(procs_raw);

    if (opts.skip_invalid && (runtime <= 0.0 || procs <= 0 || submit < 0.0)) {
      if (opts.diagnostics != nullptr) ++opts.diagnostics->invalid_jobs;
      continue;
    }
    Job job;
    job.submit = submit;
    job.start = submit + std::max(0.0, wait);
    job.runtime = runtime;
    job.procs = procs;
    log.jobs.push_back(job);
    max_end = std::max(max_end, job.end());
    max_alloc = std::max(max_alloc, procs);
  }

  log.cpus = opts.cpus_override > 0  ? opts.cpus_override
             : header_cpus > 0       ? header_cpus
                                     : std::max(1, max_alloc);
  log.duration = max_end;
  std::sort(log.jobs.begin(), log.jobs.end(),
            [](const Job& a, const Job& b) { return a.submit < b.submit; });
  return log;
}

Log read_swf_file(const std::string& path, const SwfReadOptions& opts) {
  std::ifstream in(path);
  RESCHED_CHECK(in.good(), "cannot open SWF file: " + path);
  return read_swf(in, path, opts);
}

void write_swf(std::ostream& out, const Log& log) {
  out << "; SWF written by resched\n";
  out << "; MaxProcs: " << log.cpus << "\n";
  // Times are seconds as doubles; default stream precision (6 significant
  // digits) would truncate multi-month timestamps.
  out.precision(15);
  int id = 1;
  for (const Job& j : log.jobs) {
    out << id++ << ' ' << j.submit << ' ' << j.wait() << ' ' << j.runtime
        << ' ' << j.procs << " -1 -1 " << j.procs
        << " -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
}

}  // namespace resched::workload
