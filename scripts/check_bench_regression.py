#!/usr/bin/env python3
"""Compares a google-benchmark JSON run against a checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--factor 2.0]
       check_bench_regression.py --self-test

Fails (exit 1) when:

  * the baseline contains no benchmarks at all (an empty or mis-generated
    baseline would otherwise vacuously "pass" — hard failure);
  * a benchmark present in the baseline is missing from the current run;
  * a custom counter present in a baseline benchmark is missing from the
    same benchmark in the current run (renaming or dropping a counter must
    show up as a red gate, not as silently skipped coverage);
  * any benchmark present in both files is slower than `factor` times its
    baseline real_time;
  * a SPEEDUP_PAIRS, THROUGHPUT_BARS, or COUNTER_CEILINGS entry whose
    benchmarks exist in the baseline is violated *within the current run*
    (machine speed cancels out for pairs; bars are absolute floors;
    ceilings are absolute maxima for machine-independent counters such as
    allocation counts). Baselines without those benchmarks (e.g. the
    RESSCHED smoke gate) skip the bars.

Current pairs / bars / ceilings:

  * indexed calendar — indexed earliest_fit at 10k reservations beats the
    linear oracle by >= 5x;
  * sharded service  — a 4-shard replay sustains >= 2x the events/sec of
    the 1-shard replay of the same stream (DESIGN.md §9 acceptance bar);
  * PDES replay      — the conservative windowed replay at 4 workers
    sustains >= 2x the events/sec of the same 4-shard replay at 1 worker
    (DESIGN.md §12 acceptance bar; results are byte-identical at every
    worker count, so only wall-clock may move);
  * reschedd RPC     — pipelined submits over a unix socket sustain
    >= 10k RPCs/sec with a durable WAL (DESIGN.md §10 acceptance bar);
  * hot-path layout  — the small-profile flat scan beats the treap at the
    128-breakpoint crossover; the RESSCHED sweep at Table-4 scale sustains
    >= 650 jobs/sec (raised from 565 after the SIMD kernel layer); heap
    allocations per job stay under the ceilings on the static, dynamic and
    blind scheduling paths, and the treap-node arena performs zero chunk
    allocations in steady-state churn (DESIGN.md §11 acceptance bars);
  * SIMD kernels     — the dispatched bottom-level wavefront sweep beats
    the scalar table by >= 1.3x on the dense layered DAG within the same
    run (DESIGN.md §13 acceptance bar). The SIMD leg exports the kernel
    layer's obs counters (kernels.dispatch.<isa>, kernels.bl_sweep_ns);
    the counter-presence rule therefore also fails the gate when the
    runner dispatches a different ISA than the one the baseline was
    pinned on (re-pin on new hardware, see README "Perf CI").

--self-test runs the checker against synthetic in-memory fixtures and
exits 0 iff every failure mode actually fails (wired into the lint CI
job so the gate itself cannot rot).
"""

import argparse
import json
import sys

# (slow benchmark, fast benchmark, required slow/fast ratio, label)
SPEEDUP_PAIRS = [
    ("linear_earliest_fit/10000", "indexed_earliest_fit/10000", 5.0,
     "earliest_fit speedup over the linear oracle at 10k"),
    ("BM_ShardReplay/1/real_time", "BM_ShardReplay/4/real_time", 2.0,
     "4-shard replay speedup over 1 shard"),
    ("BM_PdesReplay/1/real_time", "BM_PdesReplay/4/real_time", 2.0,
     "PDES windowed replay speedup at 4 workers over 1"),
    ("BM_FitTreap/64", "BM_FitFlat/64", 1.05,
     "small-profile flat fast path at the 128-breakpoint crossover"),
    ("BM_BlSweepScalar", "BM_BlSweepSimd", 1.3,
     "SIMD bottom-level wavefront sweep over the scalar table"),
]

# (benchmark, counter, required minimum counter value, label)
THROUGHPUT_BARS = [
    ("BM_SubmitPipelined/8/real_time", "rpc_per_sec", 10000.0,
     "reschedd pipelined submit throughput (DESIGN.md §10 bar)"),
    ("BM_ResschedSweep", "jobs_per_sec", 650.0,
     "RESSCHED sweep at Table-4 scale (raised from 565 by the SIMD kernels)"),
]

# (benchmark, counter, maximum allowed counter value, label)
# Ceilings gate machine-independent counters — allocation counts, not
# times — so they hold exactly on any runner.
COUNTER_CEILINGS = [
    ("BM_ResschedSweep", "allocs_per_job", 64.0,
     "heap allocations per RESSCHED job (arena/SoA/scratch-buffer gate)"),
    ("BM_DynamicSweep", "allocs_per_job", 64.0,
     "heap allocations per dynamic-arrivals job (measured 15)"),
    ("BM_BlindSweep", "allocs_per_job", 512.0,
     "heap allocations per blind job incl. its calendar copy (measured 277)"),
    ("BM_ChurnSteadyState", "arena_chunk_allocs", 0.0,
     "treap-node arena chunk allocations in steady-state churn"),
]

# google-benchmark JSON keys that are not user counters.
_STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "label",
    "error_occurred", "error_message", "big_o", "rms",
}


def load(path):
    with open(path) as f:
        return parse(json.load(f))


def parse(data):
    """benchmark name -> {"real_time": float, "counters": {name: float}}."""
    out = {}
    for b in data["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        counters = {
            key: float(value)
            for key, value in b.items()
            if key not in _STANDARD_KEYS and isinstance(value, (int, float))
        }
        out[b["name"]] = {
            "real_time": float(b["real_time"]),
            "counters": counters,
        }
    return out


def compare(baseline, current, factor):
    """Returns (report_lines, failure_lines)."""
    lines, failures = [], []
    if not baseline:
        failures.append("baseline contains no benchmarks"
                        " (empty or mis-generated baseline file)")
        return lines, failures

    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from the current run")
            continue
        cur = current[name]
        base_time, cur_time = base["real_time"], cur["real_time"]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        marker = "FAIL" if ratio > factor else "ok"
        lines.append(f"{marker:4} {name}: {base_time:12.1f} ns ->"
                     f" {cur_time:12.1f} ns  ({ratio:.2f}x)")
        if ratio > factor:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline"
                            f" (limit {factor:.2f}x)")
        for counter in sorted(base["counters"]):
            if counter not in cur["counters"]:
                failures.append(
                    f"{name}: counter '{counter}' present in the baseline is"
                    f" missing from the current run")

    for slow, fast, minimum, label in SPEEDUP_PAIRS:
        if slow not in baseline or fast not in baseline:
            continue
        if slow not in current or fast not in current:
            failures.append(f"{label}: benchmarks missing from the current run")
            continue
        speedup = current[slow]["real_time"] / current[fast]["real_time"]
        lines.append(f"{label}: {speedup:.1f}x (required >= {minimum}x)")
        if speedup < minimum:
            failures.append(f"{label}: {speedup:.1f}x below the {minimum}x bar")

    for name, counter, minimum, label in THROUGHPUT_BARS:
        if name not in baseline:
            continue
        value = current.get(name, {}).get("counters", {}).get(counter)
        if value is None:
            failures.append(f"{label}: {name} counter '{counter}' missing"
                            f" from the current run")
            continue
        lines.append(f"{label}: {value:.0f} (required >= {minimum:.0f})")
        if value < minimum:
            failures.append(f"{label}: {value:.0f} below the"
                            f" {minimum:.0f} floor")

    for name, counter, maximum, label in COUNTER_CEILINGS:
        if name not in baseline:
            continue
        value = current.get(name, {}).get("counters", {}).get(counter)
        if value is None:
            failures.append(f"{label}: {name} counter '{counter}' missing"
                            f" from the current run")
            continue
        lines.append(f"{label}: {value:.0f} (required <= {maximum:.0f})")
        if value > maximum:
            failures.append(f"{label}: {value:.0f} above the"
                            f" {maximum:.0f} ceiling")

    return lines, failures


def self_test():
    """Every failure mode must fail; the healthy case must pass."""
    def bench(name, real_time, **counters):
        return {"name": name, "run_type": "iteration",
                "real_time": real_time, "cpu_time": real_time,
                "time_unit": "ns", "iterations": 1, **counters}

    base = parse({"benchmarks": [
        bench("BM_X/1", 100.0, widgets_per_sec=50.0),
        bench("BM_SubmitPipelined/8/real_time", 100.0, rpc_per_sec=20000.0),
        bench("BM_ResschedSweep", 100.0, jobs_per_sec=800.0,
              allocs_per_job=13.0),
    ]})
    good = parse({"benchmarks": [
        bench("BM_X/1", 110.0, widgets_per_sec=48.0),
        bench("BM_SubmitPipelined/8/real_time", 90.0, rpc_per_sec=15000.0),
        bench("BM_ResschedSweep", 95.0, jobs_per_sec=700.0,
              allocs_per_job=15.0),
    ]})

    cases = []  # (label, baseline, current, expect_failure)
    cases.append(("healthy run passes", base, good, False))
    cases.append(("empty baseline fails", parse({"benchmarks": []}),
                  good, True))
    missing_bench = {"BM_X/1": good["BM_X/1"]}
    cases.append(("missing benchmark fails", base, missing_bench, True))
    slow = {name: dict(value) for name, value in good.items()}
    slow["BM_X/1"] = {"real_time": 500.0,
                      "counters": {"widgets_per_sec": 10.0}}
    cases.append(("2x regression fails", base, slow, True))
    dropped = {name: {"real_time": value["real_time"],
                      "counters": dict(value["counters"])}
               for name, value in good.items()}
    del dropped["BM_X/1"]["counters"]["widgets_per_sec"]
    cases.append(("dropped counter fails", base, dropped, True))
    under_bar = {name: {"real_time": value["real_time"],
                        "counters": dict(value["counters"])}
                 for name, value in good.items()}
    under_bar["BM_SubmitPipelined/8/real_time"]["counters"][
        "rpc_per_sec"] = 5000.0
    cases.append(("throughput below the bar fails", base, under_bar, True))
    over_ceiling = {name: {"real_time": value["real_time"],
                           "counters": dict(value["counters"])}
                    for name, value in good.items()}
    over_ceiling["BM_ResschedSweep"]["counters"]["allocs_per_job"] = 500.0
    cases.append(("counter above the ceiling fails", base, over_ceiling,
                  True))

    broken = 0
    for label, b, c, expect_failure in cases:
        _, failures = compare(b, c, factor=2.0)
        failed = bool(failures)
        verdict = "ok" if failed == expect_failure else "SELF-TEST BROKEN"
        if failed != expect_failure:
            broken += 1
        print(f"{verdict:16} {label}"
              + (f" ({failures[0]})" if failures else ""))
    if broken:
        print(f"\nself-test FAILED: {broken} case(s) misbehaved",
              file=sys.stderr)
        return 1
    print("\nself-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--factor", type=float, default=2.0)
    ap.add_argument("--self-test", action="store_true",
                    help="verify the checker's own failure modes and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("BASELINE and CURRENT are required unless --self-test")

    lines, failures = compare(load(args.baseline), load(args.current),
                              args.factor)
    for line in lines:
        print(line)
    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
