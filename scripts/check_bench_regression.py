#!/usr/bin/env python3
"""Compares a google-benchmark JSON run against a checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--factor 2.0]

Fails (exit 1) when any benchmark present in both files is slower than
`factor` times its baseline real_time, or when the current run is missing a
baseline benchmark. When the baseline contains the indexed-vs-linear
speedup pair, also enforces the indexed calendar's acceptance bar: indexed
earliest_fit at 10k reservations must beat the linear oracle by at least
5x *within the current run* (so machine speed cancels out). Baselines
without those benchmarks (e.g. the RESSCHED smoke gate) skip the bar.
"""

import argparse
import json
import sys

SPEEDUP_NUM = "linear_earliest_fit/10000"
SPEEDUP_DEN = "indexed_earliest_fit/10000"
SPEEDUP_MIN = 5.0


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: float(b["real_time"])
        for b in data["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--factor", type=float, default=2.0)
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for name, base_time in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from the current run")
            continue
        cur_time = current[name]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        marker = "FAIL" if ratio > args.factor else "ok"
        print(f"{marker:4} {name}: {base_time:12.1f} ns -> {cur_time:12.1f} ns"
              f"  ({ratio:.2f}x)")
        if ratio > args.factor:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline"
                f" (limit {args.factor:.2f}x)")

    if SPEEDUP_NUM in baseline and SPEEDUP_DEN in baseline:
        if SPEEDUP_NUM in current and SPEEDUP_DEN in current:
            speedup = current[SPEEDUP_NUM] / current[SPEEDUP_DEN]
            print(f"earliest_fit speedup over the linear oracle at 10k:"
                  f" {speedup:.1f}x (required >= {SPEEDUP_MIN}x)")
            if speedup < SPEEDUP_MIN:
                failures.append(
                    f"index speedup {speedup:.1f}x below the"
                    f" {SPEEDUP_MIN}x bar")
        else:
            failures.append("speedup benchmarks missing from the current run")

    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
