#!/usr/bin/env python3
"""Compares a google-benchmark JSON run against a checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--factor 2.0]

Fails (exit 1) when any benchmark present in both files is slower than
`factor` times its baseline real_time, or when the current run is missing a
baseline benchmark. When the baseline contains both halves of a SPEEDUP_PAIRS
entry, also enforces that acceptance bar: the slow benchmark must be at
least `minimum` times slower than the fast one *within the current run*
(so machine speed cancels out). Baselines without those benchmarks (e.g.
the RESSCHED smoke gate) skip the bars. Current pairs:

  * indexed calendar — indexed earliest_fit at 10k reservations beats the
    linear oracle by >= 5x;
  * sharded service  — a 4-shard replay sustains >= 2x the events/sec of
    the 1-shard replay of the same stream (DESIGN.md §9 acceptance bar).
"""

import argparse
import json
import sys

# (slow benchmark, fast benchmark, required slow/fast ratio, label)
SPEEDUP_PAIRS = [
    ("linear_earliest_fit/10000", "indexed_earliest_fit/10000", 5.0,
     "earliest_fit speedup over the linear oracle at 10k"),
    ("BM_ShardReplay/1/real_time", "BM_ShardReplay/4/real_time", 2.0,
     "4-shard replay speedup over 1 shard"),
]


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: float(b["real_time"])
        for b in data["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--factor", type=float, default=2.0)
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    for name, base_time in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from the current run")
            continue
        cur_time = current[name]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        marker = "FAIL" if ratio > args.factor else "ok"
        print(f"{marker:4} {name}: {base_time:12.1f} ns -> {cur_time:12.1f} ns"
              f"  ({ratio:.2f}x)")
        if ratio > args.factor:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline"
                f" (limit {args.factor:.2f}x)")

    for slow, fast, minimum, label in SPEEDUP_PAIRS:
        if slow not in baseline or fast not in baseline:
            continue
        if slow not in current or fast not in current:
            failures.append(f"{label}: benchmarks missing from the current run")
            continue
        speedup = current[slow] / current[fast]
        print(f"{label}: {speedup:.1f}x (required >= {minimum}x)")
        if speedup < minimum:
            failures.append(
                f"{label}: {speedup:.1f}x below the {minimum}x bar")

    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
