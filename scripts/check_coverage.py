#!/usr/bin/env python3
"""Gates line coverage against the checked-in floor.

Usage: check_coverage.py SUMMARY.json [--baseline scripts/COVERAGE_BASELINE]
       check_coverage.py --self-test

SUMMARY.json is `llvm-cov export -summary-only` output (the coverage CI
leg produces it from the clang-instrumented test run). The baseline file
holds a single number: the line-coverage floor in percent. The gate fails
when the measured percentage drops below the floor.

The floor is a ratchet, not a mirror of the current number: when coverage
rises, raise the floor in the same PR that earned it (leave a small margin
— llvm-cov percentages shift a few tenths across clang versions). Lowering
the floor needs the same justification as deleting a test.

--self-test exercises the gate against synthetic fixtures and exits 0 iff
the failure modes actually fail (wired into the lint CI job next to the
bench-gate self-test).
"""

import argparse
import json
import sys


def read_floor(path):
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                return float(line)
    raise ValueError(f"{path}: no floor value found")


def line_percent(summary):
    """Extracts totals.lines.percent from llvm-cov export JSON."""
    totals = summary["data"][0]["totals"]
    return float(totals["lines"]["percent"])


def check(percent, floor):
    """Returns (report_line, failed)."""
    verdict = "FAIL" if percent < floor else "ok"
    line = (f"{verdict:4} line coverage {percent:.2f}%"
            f" (floor {floor:.2f}%)")
    return line, percent < floor


def self_test():
    fixture = {"data": [{"totals": {"lines": {"percent": 81.25}}}]}
    cases = [
        ("above the floor passes", 80.0, False),
        ("exactly at the floor passes", 81.25, False),
        ("below the floor fails", 85.0, True),
    ]
    broken = 0
    for label, floor, expect_failure in cases:
        _, failed = check(line_percent(fixture), floor)
        ok = failed == expect_failure
        print(f"{'ok' if ok else 'SELF-TEST BROKEN':16} {label}")
        if not ok:
            broken += 1
    if broken:
        print(f"\nself-test FAILED: {broken} case(s) misbehaved",
              file=sys.stderr)
        return 1
    print("\nself-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("summary", nargs="?")
    ap.add_argument("--baseline", default="scripts/COVERAGE_BASELINE")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.summary:
        ap.error("SUMMARY.json is required unless --self-test")

    with open(args.summary) as f:
        percent = line_percent(json.load(f))
    floor = read_floor(args.baseline)
    line, failed = check(percent, floor)
    print(line)
    if failed:
        print(f"\ncoverage gate FAILED: {percent:.2f}% is below the"
              f" {floor:.2f}% floor ({args.baseline})", file=sys.stderr)
        return 1
    if percent >= floor + 3.0:
        print(f"note: coverage is {percent - floor:.1f} points above the"
              f" floor — consider ratcheting {args.baseline} up")
    print("\ncoverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
